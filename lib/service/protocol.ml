module Json = Soctam_obs.Json
module Soc = Soctam_soc.Soc
module Core_def = Soctam_soc.Core_def
module Test_time = Soctam_soc.Test_time
module Benchmarks = Soctam_soc.Benchmarks
module Soc_file = Soctam_soc.Soc_file

type solver = Exact | Ilp | Heuristic | Race | Pack

type soc_spec = Named of string | Inline of Soc.t

type instance = {
  soc_spec : soc_spec;
  solver : solver;
  num_buses : int;
  total_width : int;
  time_model : Test_time.model;
  d_max_mm : float option;
  p_max_mw : float option;
}

type request =
  | Solve of {
      instance : instance;
      deadline_ms : float option;
      stream : bool;
    }
  | Sweep of {
      instance : instance;
      widths : int list;
      deadline_ms : float option;
      stream : bool;
    }
  | Stats
  | Ping
  | Health
  | Sleep of { ms : float }
  | Shutdown

let solver_name = function
  | Exact -> "exact"
  | Ilp -> "ilp"
  | Heuristic -> "heuristic"
  | Race -> "race"
  | Pack -> "pack"

let id_of json =
  match Json.member "id" json with Some v -> v | None -> Json.Null

(* Trace ids are opaque client strings, bounded so a log line cannot be
   blown up by a megabyte id. Content is unrestricted — Json escaping
   keeps log lines one-per-line regardless of embedded newlines or
   quotes. *)
let max_trace_id_len = 64

let trace_id_of json =
  match Json.member "trace_id" json with
  | None | Some Json.Null -> Ok None
  | Some (Json.Str s) ->
      if String.length s > max_trace_id_len then
        Error
          (Printf.sprintf "trace_id exceeds %d bytes" max_trace_id_len)
      else Ok (Some s)
  | Some _ -> Error "trace_id must be a string"

(* ---- field accessors with typed errors ---- *)

let ( let* ) = Result.bind

(* Values far above any plausible SOC are rejected outright: a width
   or core count in the millions would only serve to exhaust the
   daemon's memory building staircases and memo tables. The bound also
   keeps [int_of_float] inside the range where the conversion is
   defined. *)
let max_dimension = 100_000

let as_int ~what = function
  | Json.Num x when Float.is_integer x && Float.abs x <= 1e15 ->
      Ok (int_of_float x)
  | _ -> Error (Printf.sprintf "%s must be an integer" what)

let as_pos_int ~what json =
  let* n = as_int ~what json in
  if n < 1 then Error (Printf.sprintf "%s must be a positive integer" what)
  else if n > max_dimension then
    Error (Printf.sprintf "%s exceeds the service cap (%d)" what max_dimension)
  else Ok n

let as_num ~what = function
  | Json.Num x -> Ok x
  | _ -> Error (Printf.sprintf "%s must be a number" what)

let as_bool ~what = function
  | Json.Bool b -> Ok b
  | _ -> Error (Printf.sprintf "%s must be a boolean" what)

let as_str ~what = function
  | Json.Str s -> Ok s
  | _ -> Error (Printf.sprintf "%s must be a string" what)

let opt_field json key conv =
  match Json.member key json with
  | None | Some Json.Null -> Ok None
  | Some v ->
      let* v = conv ~what:key v in
      Ok (Some v)

let req_field json key conv =
  match Json.member key json with
  | None | Some Json.Null -> Error (Printf.sprintf "missing field %S" key)
  | Some v -> conv ~what:key v

let with_default d = function Some v -> v | None -> d

(* ---- inline SOC objects ---- *)

let parse_core json =
  let* name = req_field json "name" as_str in
  let ctx msg = Printf.sprintf "core %S: %s" name msg in
  let remap r = Result.map_error ctx r in
  let* inputs = remap (req_field json "inputs" as_int) in
  let* outputs = remap (req_field json "outputs" as_int) in
  let* patterns = remap (req_field json "patterns" as_int) in
  let* ff = remap (opt_field json "ff" as_int) in
  let* chains = remap (opt_field json "chains" as_int) in
  let* power_mw = remap (opt_field json "power_mw" as_num) in
  let* dim_mm =
    match Json.member "dim_mm" json with
    | None | Some Json.Null -> Ok None
    | Some (Json.Arr [ Json.Num w; Json.Num h ]) -> Ok (Some (w, h))
    | Some _ -> Error (ctx "dim_mm must be [width, height]")
  in
  let flip_flops = with_default 0 ff in
  let scan =
    if flip_flops = 0 then Core_def.Combinational
    else
      Core_def.Scan
        { flip_flops; chains = with_default 1 chains }
  in
  let power_mw =
    with_default
      (Benchmarks.derived_power_mw ~inputs ~outputs ~flip_flops)
      power_mw
  in
  let dim_mm =
    with_default
      (Benchmarks.derived_dim_mm ~inputs ~outputs ~flip_flops)
      dim_mm
  in
  match
    Core_def.make ~name ~inputs ~outputs ~scan ~patterns ~power_mw ~dim_mm
  with
  | core -> Ok core
  | exception Invalid_argument msg -> Error (ctx msg)

let parse_soc_spec json =
  match json with
  | Json.Str spec -> Ok (Named spec)
  | Json.Obj _ -> (
      let* name = req_field json "name" as_str in
      let* cores =
        match Json.member "cores" json with
        | Some (Json.Arr cores) when cores <> [] ->
            List.fold_left
              (fun acc core ->
                let* acc = acc in
                let* core = parse_core core in
                Ok (core :: acc))
              (Ok []) cores
            |> Result.map List.rev
        | _ -> Error "soc.cores must be a non-empty array"
      in
      match Soc.make ~name cores with
      | soc -> Ok (Inline soc)
      | exception Invalid_argument msg -> Error ("soc: " ^ msg))
  | _ -> Error "soc must be a spec string or an inline object"

(* ---- requests ---- *)

let parse_solver ~what = function
  | Json.Str "exact" -> Ok Exact
  | Json.Str "ilp" -> Ok Ilp
  | Json.Str "heuristic" -> Ok Heuristic
  | Json.Str "race" -> Ok Race
  | Json.Str "pack" -> Ok Pack
  | _ ->
      Error
        (what
        ^ " must be \"exact\", \"ilp\", \"heuristic\", \"race\" or \"pack\"")

let parse_model ~what = function
  | Json.Str "serialization" -> Ok Test_time.Serialization
  | Json.Str "scan" -> Ok Test_time.Scan_distribution
  | _ -> Error (what ^ " must be \"serialization\" or \"scan\"")

let parse_instance ?widths json =
  let* soc_json =
    match Json.member "soc" json with
    | None | Some Json.Null -> Error "missing field \"soc\""
    | Some v -> Ok v
  in
  let* soc_spec = parse_soc_spec soc_json in
  let* solver = opt_field json "solver" parse_solver in
  let* num_buses = req_field json "num_buses" as_pos_int in
  let* total_width =
    match widths with
    | Some ws -> Ok (List.fold_left max 1 ws)
    | None -> req_field json "total_width" as_pos_int
  in
  let* time_model = opt_field json "model" parse_model in
  let* d_max_mm = opt_field json "d_max" as_num in
  let* p_max_mw = opt_field json "p_max" as_num in
  if num_buses > total_width then
    Error
      (Printf.sprintf "num_buses (%d) exceeds total_width (%d)" num_buses
         total_width)
  else
    Ok
      { soc_spec;
        solver = with_default Exact solver;
        num_buses;
        total_width;
        time_model = with_default Test_time.Serialization time_model;
        d_max_mm;
        p_max_mw }

let parse_deadline json =
  let* d = opt_field json "deadline_ms" as_num in
  match d with
  | Some ms when ms < 0.0 -> Error "deadline_ms must be non-negative"
  | d -> Ok d

let parse_stream json =
  let* s = opt_field json "stream" as_bool in
  Ok (with_default false s)

let parse_widths json =
  match Json.member "widths" json with
  | Some (Json.Arr ws) when List.length ws > 4096 ->
      Error "sweep: widths has more than 4096 entries"
  | Some (Json.Arr ws) when ws <> [] ->
      List.fold_left
        (fun acc w ->
          let* acc = acc in
          let* w = as_pos_int ~what:"widths element" w in
          Ok (w :: acc))
        (Ok []) ws
      |> Result.map List.rev
  | _ -> Error "sweep: widths must be a non-empty array of integers"

let parse_request json =
  match json with
  | Json.Obj _ -> (
      let* op = req_field json "op" as_str in
      let ctx msg = Printf.sprintf "%s: %s" op msg in
      match op with
      | "ping" -> Ok Ping
      | "stats" -> Ok Stats
      | "health" -> Ok Health
      | "shutdown" -> Ok Shutdown
      | "sleep" ->
          let* ms =
            Result.map_error ctx (req_field json "ms" as_num)
          in
          if ms < 0.0 || ms > 60_000.0 then
            Error (ctx "ms must be in [0, 60000]")
          else Ok (Sleep { ms })
      | "solve" ->
          let* instance = Result.map_error ctx (parse_instance json) in
          let* deadline_ms = Result.map_error ctx (parse_deadline json) in
          let* stream = Result.map_error ctx (parse_stream json) in
          Ok (Solve { instance; deadline_ms; stream })
      | "sweep" ->
          let* widths = parse_widths json in
          let* instance =
            Result.map_error ctx (parse_instance ~widths json)
          in
          let* deadline_ms = Result.map_error ctx (parse_deadline json) in
          let* stream = Result.map_error ctx (parse_stream json) in
          Ok (Sweep { instance; widths; deadline_ms; stream })
      | other -> Error (Printf.sprintf "unknown op %S" other))
  | _ -> Error "request must be a JSON object"

(* ---- server-side SOC resolution ---- *)

let resolve_named spec =
  match spec with
  | "s1" | "S1" -> Ok (Benchmarks.s1 ())
  | "s2" | "S2" -> Ok (Benchmarks.s2 ())
  | "s3" | "S3" -> Ok (Benchmarks.s3 ())
  | spec -> (
      match String.split_on_char ':' spec with
      | [ "rnd"; seed; n ] -> (
          match (int_of_string_opt seed, int_of_string_opt n) with
          | Some _, Some n when n > max_dimension ->
              Error
                (Printf.sprintf "rnd core count exceeds the service cap (%d)"
                   max_dimension)
          | Some seed, Some n -> (
              match Benchmarks.random ~seed ~num_cores:n () with
              | soc -> Ok soc
              | exception Invalid_argument msg -> Error msg)
          | _ -> Error "rnd:<seed>:<n> takes two integers")
      | "file" :: rest -> (
          let path = String.concat ":" rest in
          match Soc_file.of_file path with
          | (Ok _ | Error _) as r -> r
          | exception Sys_error msg -> Error msg)
      | _ ->
          Error
            (Printf.sprintf
               "unknown SOC %S (use s1, s2, s3, rnd:<seed>:<n>, \
                file:<path> or an inline object)" spec))

let resolve_soc = function
  | Inline soc -> Ok soc
  | Named spec -> resolve_named spec

(* ---- client-side rendering ---- *)

let json_of_soc_spec = function
  | Named spec -> Json.Str spec
  | Inline soc ->
      let core c =
        let w, h = c.Core_def.dim_mm in
        Json.Obj
          [ ("name", Json.Str c.Core_def.name);
            ("inputs", Json.int c.Core_def.inputs);
            ("outputs", Json.int c.Core_def.outputs);
            ("ff", Json.int (Core_def.flip_flops c));
            ("chains", Json.int (Core_def.chains c));
            ("patterns", Json.int c.Core_def.patterns);
            ("power_mw", Json.Num c.Core_def.power_mw);
            ("dim_mm", Json.Arr [ Json.Num w; Json.Num h ]) ]
      in
      Json.Obj
        [ ("name", Json.Str (Soc.name soc));
          ( "cores",
            Json.Arr (Array.to_list (Array.map core (Soc.cores soc))) ) ]

let instance_fields instance =
  [ ("soc", json_of_soc_spec instance.soc_spec);
    ("solver", Json.Str (solver_name instance.solver));
    ("num_buses", Json.int instance.num_buses);
    ( "model",
      Json.Str
        (match instance.time_model with
        | Test_time.Serialization -> "serialization"
        | Test_time.Scan_distribution -> "scan") ) ]
  @ (match instance.d_max_mm with
    | Some d -> [ ("d_max", Json.Num d) ]
    | None -> [])
  @
  match instance.p_max_mw with
  | Some p -> [ ("p_max", Json.Num p) ]
  | None -> []

let deadline_fields = function
  | Some ms -> [ ("deadline_ms", Json.Num ms) ]
  | None -> []

let stream_fields = function
  | true -> [ ("stream", Json.Bool true) ]
  | false -> []

let json_of_request ?id ?trace_id req =
  let id = match id with Some v -> [ ("id", v) ] | None -> [] in
  let trace =
    match trace_id with Some s -> [ ("trace_id", Json.Str s) ] | None -> []
  in
  let fields =
    match req with
    | Ping -> [ ("op", Json.Str "ping") ]
    | Stats -> [ ("op", Json.Str "stats") ]
    | Health -> [ ("op", Json.Str "health") ]
    | Shutdown -> [ ("op", Json.Str "shutdown") ]
    | Sleep { ms } -> [ ("op", Json.Str "sleep"); ("ms", Json.Num ms) ]
    | Solve { instance; deadline_ms; stream } ->
        (("op", Json.Str "solve") :: instance_fields instance)
        @ [ ("total_width", Json.int instance.total_width) ]
        @ deadline_fields deadline_ms
        @ stream_fields stream
    | Sweep { instance; widths; deadline_ms; stream } ->
        (("op", Json.Str "sweep") :: instance_fields instance)
        @ [ ("widths", Json.Arr (List.map Json.int widths)) ]
        @ deadline_fields deadline_ms
        @ stream_fields stream
  in
  Json.Obj (id @ trace @ fields)

let trace_fields = function
  | Some s -> [ ("trace_id", Json.Str s) ]
  | None -> []

let ok_reply ~id ?trace_id ?cached ?source ?elapsed_ms result =
  Json.Obj
    (("id", id) :: trace_fields trace_id
    @ [ ("ok", Json.Bool true) ]
    @ (match cached with
      | Some c -> [ ("cached", Json.Bool c) ]
      | None -> [])
    @ (match source with
      | Some s -> [ ("source", Json.Str s) ]
      | None -> [])
    @ (match elapsed_ms with
      | Some ms -> [ ("elapsed_ms", Json.Num ms) ]
      | None -> [])
    @ [ ("result", result) ])

let error_reply ~id ?trace_id ~code message =
  Json.Obj
    (("id", id) :: trace_fields trace_id
    @ [ ("ok", Json.Bool false);
        ( "error",
          Json.Obj
            [ ("code", Json.Str code); ("message", Json.Str message) ] ) ])

(* An event line carries "event" but never "ok": readers detect the
   final reply of a streamed exchange by the presence of "ok". *)
let incumbent_event ~id ?trace_id ~test_time ~engine ~elapsed_ms () =
  Json.Obj
    (("id", id) :: trace_fields trace_id
    @ [ ("event", Json.Str "incumbent");
        ("test_time", Json.int test_time);
        ("engine", Json.Str engine);
        ("elapsed_ms", Json.Num elapsed_ms) ])

let is_final_reply json =
  match json with Json.Obj _ -> Json.member "ok" json <> None | _ -> true
