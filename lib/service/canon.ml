module Soc = Soctam_soc.Soc
module Core_def = Soctam_soc.Core_def
module Test_time = Soctam_soc.Test_time
module Problem = Soctam_core.Problem

type t = { key : string; digest : string; perm : int array }

(* Floats (power rating, footprint) print as hex floats: exact, no
   rounding collisions between nearby values. *)
let core_line (c : Core_def.t) =
  let ff = Core_def.flip_flops c and ch = Core_def.chains c in
  let w, h = c.Core_def.dim_mm in
  Printf.sprintf "%s|%d|%d|%d|%d|%d|%h|%hx%h" c.Core_def.name
    c.Core_def.inputs c.Core_def.outputs ff ch c.Core_def.patterns
    c.Core_def.power_mw w h

let of_instance ?(extra = "") ~soc ~time_model ~constraints ~solver
    ~num_buses ~total_width () =
  let n = Soc.num_cores soc in
  let lines = Array.init n (fun i -> core_line (Soc.core soc i)) in
  (* Unique names make the comparison a strict total order: the sorted
     sequence — and hence the key and [perm] — is independent of the
     request's core order. *)
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare lines.(a) lines.(b)) order;
  let perm = Array.make n 0 in
  Array.iteri (fun pos i -> perm.(i) <- pos) order;
  let map_pairs pairs =
    List.map
      (fun (a, b) ->
        let a = perm.(a) and b = perm.(b) in
        (min a b, max a b))
      pairs
    |> List.sort_uniq compare
  in
  let pair_str pairs =
    String.concat ","
      (List.map (fun (a, b) -> Printf.sprintf "%d-%d" a b) pairs)
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "soctam-canon-v1\n";
  Buffer.add_string buf
    (Printf.sprintf "model=%s solver=%s nb=%d w=%d extra=%s\n"
       (Test_time.model_name time_model)
       solver num_buses total_width extra);
  Array.iter
    (fun i ->
      Buffer.add_string buf lines.(i);
      Buffer.add_char buf '\n')
    order;
  Buffer.add_string buf
    (Printf.sprintf "excl=%s\nco=%s\n"
       (pair_str (map_pairs constraints.Problem.exclusion_pairs))
       (pair_str (map_pairs constraints.Problem.co_pairs)));
  let key = Buffer.contents buf in
  { key; digest = Digest.to_hex (Digest.string key); perm }

let apply_perm t a =
  if Array.length a <> Array.length t.perm then
    invalid_arg "Canon.apply_perm: length mismatch";
  Array.init (Array.length a) (fun i -> a.(t.perm.(i)))

let store_perm t a =
  if Array.length a <> Array.length t.perm then
    invalid_arg "Canon.store_perm: length mismatch";
  let out = Array.make (Array.length a) a.(0) in
  Array.iteri (fun i v -> out.(t.perm.(i)) <- v) a;
  out
