(** Flexible-width rectangle scheduling (extension).

    The DAC 2000 architecture fixes bus widths for the whole session. Its
    successor formulations let every core pick its own TAM width, packing
    core tests as rectangles (width × test time) into the W-wire strip.
    This module implements that model: a skyline-based greedy packer over
    several width policies, conversion of fixed-bus architectures into
    rectangle schedules (so the flexible model provably never loses to
    the paper's model), a validator, and an area lower bound. *)

type placement = {
  core : int;
  width : int;  (** TAM wires given to this core's test. *)
  wire_lo : int;  (** First wire of the contiguous interval. *)
  start : int;
  finish : int;  (** [start + t_core(width)]. *)
}

type t = { placements : placement list; makespan : int }

(** [lower_bound problem] is the classic bound:
    max(total area / W, fastest possible single-core time). *)
val lower_bound : Soctam_core.Problem.t -> int

(** [of_architecture problem arch] converts a fixed-bus architecture into
    the equivalent rectangle schedule (bus j occupies a fixed wire
    interval; members run back-to-back). Its makespan equals the
    architecture's test time. *)
val of_architecture : Soctam_core.Problem.t -> Soctam_core.Architecture.t -> t

(** [place_skyline free ~width ~floor_time] finds, on a skyline
    ([free.(x)] = first idle cycle of wire [x]), the wire offset at
    which a [width]-wide rectangle starting no earlier than [floor_time]
    can begin earliest, and returns [(wire_lo, start)]. Shared with the
    {!Soctam_pack} packers. *)
val place_skyline : int array -> width:int -> floor_time:int -> int * int

(** [co_partners problem] is the adjacency of the power co-assignment
    pairs: entry [i] lists the cores that must never overlap core [i]
    in time. *)
val co_partners : Soctam_core.Problem.t -> int list array

(** [greedy problem] packs all cores with a skyline best-fit heuristic
    for a spread of width policies (fractions of the budget, plus each
    core's native width) and returns the best schedule found.

    Constraint mapping: power co-assignment pairs are serialized (their
    rectangles never overlap in time). Place-and-route exclusion pairs
    are vacuous in this model — every test gets dedicated wires, so no
    two cores ever share a trunk — and are therefore ignored. *)
val greedy : Soctam_core.Problem.t -> t

(** [solve problem] is the better of {!greedy} and the converted exact
    fixed-bus optimum — hence never worse than the paper's model on
    instances the paper's model can solve. *)
val solve : Soctam_core.Problem.t -> t option

(** [validate problem sched] checks: every core placed exactly once,
    rectangle wire intervals within the strip, durations matching the
    time model, no two rectangles overlapping in wire × time space, no
    co-assignment pair overlapping in time, and the makespan equal to
    the latest finish. *)
val validate : Soctam_core.Problem.t -> t -> (unit, string) result
