let us ns = Int64.to_float ns /. 1e3

let event_json (ev : Obs.event) =
  let base =
    [ ("name", Json.Str ev.Obs.name);
      ("cat", Json.Str "soctam");
      ("ph", Json.Str "X");
      ("ts", Json.Num (us ev.Obs.start_ns));
      ("dur", Json.Num (us ev.Obs.dur_ns));
      ("pid", Json.int 1);
      ("tid", Json.int ev.Obs.track) ]
  in
  let args =
    match ev.Obs.args with
    | [] -> []
    | kv -> [ ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) kv)) ]
  in
  Json.Obj (base @ args)

let thread_name_json track =
  Json.Obj
    [ ("name", Json.Str "thread_name");
      ("ph", Json.Str "M");
      ("pid", Json.int 1);
      ("tid", Json.int track);
      ("args", Json.Obj [ ("name", Json.Str (Printf.sprintf "domain %d" track)) ]) ]

let metric_json (m : Obs.metric) =
  Json.Obj
    [ ("name", Json.Str m.Obs.name);
      ("count", Json.int m.Obs.count);
      ("total", Json.Num m.Obs.total);
      ("max", Json.Num m.Obs.max) ]

let to_json ?(metrics = []) events =
  let tracks =
    List.sort_uniq compare (List.map (fun (e : Obs.event) -> e.Obs.track) events)
  in
  Json.Obj
    [ ( "traceEvents",
        Json.Arr
          (List.map thread_name_json tracks @ List.map event_json events) );
      ("displayTimeUnit", Json.Str "ms");
      ("soctamMetrics", Json.Arr (List.map metric_json metrics)) ]

let write path ?metrics events =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Json.to_string_pretty (to_json ?metrics events)))
