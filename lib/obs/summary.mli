(** Plain-text profile rendering ([--profile]). *)

(** [spans_table summary] renders a per-span-name table (count, total
    and max in milliseconds, mean in microseconds) from
    {!Obs.span_summary} output. Empty string when there are no spans. *)
val spans_table : Obs.metric list -> string

(** [counters_table metrics] renders the merged counter/gauge table.
    Empty string when there are no counters. *)
val counters_table : Obs.metric list -> string
