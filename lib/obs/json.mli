(** Minimal JSON tree, printer and parser.

    The container ships no JSON package, and the observability layer
    needs both directions: the Chrome-trace writer and
    [tamopt sweep --json] emit JSON, and the tests round-trip what was
    written. The subset is full JSON minus extremes: numbers are OCaml
    floats (integers survive exactly up to 2^53), strings are the
    escaped ASCII/UTF-8 bytes as given. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(** Integer convenience constructor ([Num (float_of_int n)]). *)
val int : int -> t

(** Compact one-line rendering. Integral [Num]s print without a decimal
    point, so counters round-trip as JSON integers. *)
val to_string : t -> string

(** Pretty rendering with two-space indentation and a trailing
    newline — the format written to files. *)
val to_string_pretty : t -> string

(** [parse s] parses one JSON value (surrounding whitespace allowed).
    Returns [Error msg] with a byte offset on malformed input or
    trailing garbage — anything after the top-level value, and
    non-JSON number spellings (["01"], ["+5"], [".5"], ["5."]) that a
    lax [float_of_string] would fold into the value, are rejected.
    The [tamoptd] NDJSON loop relies on this: a malformed request line
    must produce an error reply, never a silently-misread request. *)
val parse : string -> (t, string) result

(** [member key json] looks up [key] in an [Obj]; [None] on missing
    keys and non-objects. *)
val member : string -> t -> t option
