type event = {
  name : string;
  track : int;
  start_ns : int64;
  dur_ns : int64;
  args : (string * string) list;
}

type metric = { name : string; count : int; total : float; max : float }

(* Mutable counter cell, private to one domain's buffer. *)
type cell = { mutable c_count : int; mutable c_total : float; mutable c_max : float }

(* Per-domain buffer: only its owning domain writes it; [drain] reads it
   after the owning domain has quiesced (the pool's batch-completion
   mutex provides the happens-before edge). *)
type buffer = {
  id : int;  (** Registration order: fixes the metric merge order. *)
  track : int;  (** Owning domain's id. *)
  mutable events : event array;
  mutable len : int;
  counters : (string, cell) Hashtbl.t;
}

let enabled_flag = Atomic.make false
let epoch_ns = Atomic.make 0L

let registry_mutex = Mutex.create ()
let registry : buffer list ref = ref []
let next_id = ref 0

let dummy_event =
  { name = ""; track = 0; start_ns = 0L; dur_ns = 0L; args = [] }

let buffer_key : buffer Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      Mutex.lock registry_mutex;
      let buf =
        { id = !next_id;
          track = (Domain.self () :> int);
          events = [||];
          len = 0;
          counters = Hashtbl.create 32 }
      in
      incr next_id;
      registry := buf :: !registry;
      Mutex.unlock registry_mutex;
      buf)

let my_buffer () = Domain.DLS.get buffer_key

let enabled () = Atomic.get enabled_flag

let enable () =
  Atomic.set enabled_flag false;
  Mutex.lock registry_mutex;
  List.iter
    (fun buf ->
      buf.len <- 0;
      buf.events <- [||];
      Hashtbl.reset buf.counters)
    !registry;
  Mutex.unlock registry_mutex;
  Atomic.set epoch_ns (Clock.now_ns ());
  Atomic.set enabled_flag true

let disable () = Atomic.set enabled_flag false

let push buf ev =
  if buf.len >= Array.length buf.events then begin
    let cap = max 256 (2 * Array.length buf.events) in
    let fresh = Array.make cap dummy_event in
    Array.blit buf.events 0 fresh 0 buf.len;
    buf.events <- fresh
  end;
  buf.events.(buf.len) <- ev;
  buf.len <- buf.len + 1

let record name start_abs args =
  let now = Clock.now_ns () in
  let buf = my_buffer () in
  push buf
    { name;
      track = buf.track;
      start_ns = Int64.sub start_abs (Atomic.get epoch_ns);
      dur_ns = Int64.sub now start_abs;
      args }

let span ?(args = []) name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let t0 = Clock.now_ns () in
    match f () with
    | v ->
        record name t0 args;
        v
    | exception e ->
        record name t0 args;
        raise e
  end

type token = int64

let dead = Int64.min_int

let start () = if Atomic.get enabled_flag then Clock.now_ns () else dead

let finish ?(args = []) name tok =
  if tok <> dead && Atomic.get enabled_flag then record name tok args

let counter_cell name =
  let buf = my_buffer () in
  match Hashtbl.find_opt buf.counters name with
  | Some cell -> cell
  | None ->
      let cell = { c_count = 0; c_total = 0.0; c_max = neg_infinity } in
      Hashtbl.add buf.counters name cell;
      cell

let add name v =
  if Atomic.get enabled_flag then begin
    let cell = counter_cell name in
    cell.c_count <- cell.c_count + 1;
    cell.c_total <- cell.c_total +. v;
    cell.c_max <- Float.max cell.c_max v
  end

let incr ?(n = 1) name =
  if Atomic.get enabled_flag then begin
    let cell = counter_cell name in
    cell.c_count <- cell.c_count + 1;
    cell.c_total <- cell.c_total +. float_of_int n;
    cell.c_max <- Float.max cell.c_max (float_of_int n)
  end

let gauge name v =
  if Atomic.get enabled_flag then begin
    let cell = counter_cell name in
    cell.c_count <- cell.c_count + 1;
    cell.c_total <- v;
    cell.c_max <- Float.max cell.c_max v
  end

let drain () =
  Mutex.lock registry_mutex;
  (* Fixed order: registration id. Metric merge order — and thus the
     floating-point sums — depends only on which domains recorded what,
     and event order is finally normalized by (track, start). *)
  let buffers = List.sort (fun a b -> compare a.id b.id) !registry in
  let events =
    List.concat_map
      (fun buf -> Array.to_list (Array.sub buf.events 0 buf.len))
      buffers
  in
  let merged : (string, cell) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun buf ->
      Hashtbl.iter
        (fun name (c : cell) ->
          match Hashtbl.find_opt merged name with
          | Some m ->
              m.c_count <- m.c_count + c.c_count;
              m.c_total <- m.c_total +. c.c_total;
              m.c_max <- Float.max m.c_max c.c_max
          | None ->
              Hashtbl.add merged name
                { c_count = c.c_count; c_total = c.c_total; c_max = c.c_max })
        buf.counters)
    buffers;
  Mutex.unlock registry_mutex;
  let events =
    List.stable_sort
      (fun (a : event) (b : event) ->
        match compare a.track b.track with
        | 0 -> Int64.compare a.start_ns b.start_ns
        | c -> c)
      events
  in
  let metrics =
    Hashtbl.fold
      (fun name (c : cell) acc ->
        { name; count = c.c_count; total = c.c_total; max = c.c_max } :: acc)
      merged []
    |> List.sort (fun (a : metric) b -> compare a.name b.name)
  in
  (events, metrics)

let span_summary events =
  let tbl : (string, cell) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun ev ->
      let s = Int64.to_float ev.dur_ns /. 1e9 in
      match Hashtbl.find_opt tbl ev.name with
      | Some c ->
          c.c_count <- c.c_count + 1;
          c.c_total <- c.c_total +. s;
          c.c_max <- Float.max c.c_max s
      | None ->
          Hashtbl.add tbl ev.name
            { c_count = 1; c_total = s; c_max = s })
    events;
  Hashtbl.fold
    (fun name (c : cell) acc ->
      { name; count = c.c_count; total = c.c_total; max = c.c_max } :: acc)
    tbl []
  |> List.sort (fun (a : metric) b -> compare a.name b.name)
