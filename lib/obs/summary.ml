module Table = Soctam_report.Table

let spans_table (summary : Obs.metric list) =
  if summary = [] then ""
  else
    Table.render
      ~headers:[ "span"; "count"; "total ms"; "mean us"; "max ms" ]
      (List.map
         (fun (m : Obs.metric) ->
           [ m.Obs.name;
             string_of_int m.Obs.count;
             Table.fmt_float ~decimals:3 (1e3 *. m.Obs.total);
             Table.fmt_float ~decimals:1
               (1e6 *. m.Obs.total /. float_of_int (max 1 m.Obs.count));
             Table.fmt_float ~decimals:3 (1e3 *. m.Obs.max) ])
         summary)

let counters_table (metrics : Obs.metric list) =
  if metrics = [] then ""
  else
    Table.render
      ~headers:[ "counter"; "count"; "total"; "max" ]
      (List.map
         (fun (m : Obs.metric) ->
           [ m.Obs.name;
             string_of_int m.Obs.count;
             Table.fmt_float ~decimals:3 m.Obs.total;
             Table.fmt_float ~decimals:3 m.Obs.max ])
         metrics)
