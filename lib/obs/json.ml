type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let int n = Num (float_of_int n)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_num buf x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" x)
  else if Float.is_finite x then
    Buffer.add_string buf (Printf.sprintf "%.12g" x)
  else Buffer.add_string buf "null" (* JSON has no inf/nan *)

let rec emit ~indent ~level buf json =
  let nl pad =
    if indent then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * pad) ' ')
    end
  in
  match json with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num x -> add_num buf x
  | Str s -> escape buf s
  | Arr [] -> Buffer.add_string buf "[]"
  | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          nl (level + 1);
          emit ~indent ~level:(level + 1) buf item)
        items;
      nl level;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          nl (level + 1);
          escape buf k;
          Buffer.add_string buf (if indent then ": " else ":");
          emit ~indent ~level:(level + 1) buf v)
        fields;
      nl level;
      Buffer.add_char buf '}'

let to_string json =
  let buf = Buffer.create 256 in
  emit ~indent:false ~level:0 buf json;
  Buffer.contents buf

let to_string_pretty json =
  let buf = Buffer.create 1024 in
  emit ~indent:true ~level:0 buf json;
  Buffer.add_char buf '\n';
  Buffer.contents buf

exception Bad of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    if
      !pos + String.length word <= n
      && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            incr pos;
            if !pos >= n then fail "unterminated escape";
            (match s.[!pos] with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                if !pos + 4 >= n then fail "truncated \\u escape";
                let hex = String.sub s (!pos + 1) 4 in
                let code =
                  match int_of_string_opt ("0x" ^ hex) with
                  | Some c -> c
                  | None -> fail "bad \\u escape"
                in
                (* Encode the code point as UTF-8 (surrogate pairs are
                   passed through as-is; trace content is ASCII). *)
                if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
                else begin
                  Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char buf
                    (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end;
                pos := !pos + 4
            | c -> fail (Printf.sprintf "bad escape %C" c));
            incr pos;
            go ()
        | c ->
            Buffer.add_char buf c;
            incr pos;
            go ()
    in
    go ();
    Buffer.contents buf
  in
  (* Strict JSON number grammar: optional minus, then "0" or a
     nonzero-led digit run, optional ".digits", optional exponent.
     [float_of_string] alone is too permissive — it accepts "+5", ".5",
     "5.", "01" and hex floats, so a malformed NDJSON token would be
     silently folded into a number instead of rejected. *)
  let valid_number tok =
    let m = String.length tok in
    let i = ref 0 in
    let digits () =
      let d = !i in
      while !i < m && (match tok.[!i] with '0' .. '9' -> true | _ -> false) do
        incr i
      done;
      !i > d
    in
    let ok = ref true in
    if !i < m && tok.[!i] = '-' then incr i;
    (* Integer part: a lone 0, or a nonzero-led digit run. *)
    (if !i < m && tok.[!i] = '0' then incr i
     else if not (digits ()) then ok := false);
    if !ok && !i < m && tok.[!i] = '.' then begin
      incr i;
      if not (digits ()) then ok := false
    end;
    if !ok && !i < m && (tok.[!i] = 'e' || tok.[!i] = 'E') then begin
      incr i;
      if !i < m && (tok.[!i] = '+' || tok.[!i] = '-') then incr i;
      if not (digits ()) then ok := false
    end;
    !ok && !i = m
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && num_char s.[!pos] do
      incr pos
    done;
    let tok = String.sub s start (!pos - start) in
    if not (valid_number tok) then fail "bad number";
    match float_of_string_opt tok with
    | Some x -> Num x
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          Arr []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            incr pos;
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          Arr (List.rev !items)
        end
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (key, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            incr pos;
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (at, msg) ->
      Error (Printf.sprintf "JSON parse error at byte %d: %s" at msg)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None
