let sub_buckets = 64
let sub_log2 = 6

(* Octaves cover exponents (e_min, e_min + octaves]; frexp exponents at
   or below e_min clamp to bucket 0, above the top clamp to the last
   bucket. e_min = -20 puts the low edge near 1e-6 — microsecond
   latencies measured in ms still resolve. *)
let e_min = -20
let octaves = 64
let num_buckets = octaves * sub_buckets

let index_of v =
  if not (v > 0.0) then 0 (* zero, negatives and NaN clamp low *)
  else begin
    let m, e = Float.frexp v in
    if e <= e_min then 0
    else if e > e_min + octaves then num_buckets - 1
    else
      (* m in [0.5, 1): m*128 in [64, 128), truncation = floor. *)
      (((e - e_min - 1) lsl sub_log2) lor (int_of_float (m *. 128.0) - 64))
  end

let bounds i =
  if i < 0 || i >= num_buckets then invalid_arg "Hist.bounds";
  let e = e_min + 1 + (i lsr sub_log2) in
  let s = i land (sub_buckets - 1) in
  let edge k = Float.ldexp (1.0 +. (float_of_int k /. 64.0)) (e - 1) in
  (edge s, edge (s + 1))

let midpoint i =
  let lo, hi = bounds i in
  0.5 *. (lo +. hi)

(* One domain's shard. Only the owning domain writes [buckets] and
   [scalars]; [scalars] is [|sum; min; max|] kept in an unboxed float
   array so [record] never allocates. *)
type shard = { buckets : int array; scalars : float array }

type t = {
  mutex : Mutex.t;
  mutable shards : shard list;
  key : shard Domain.DLS.key;
}

let fresh_shard () =
  { buckets = Array.make num_buckets 0;
    scalars = [| 0.0; infinity; neg_infinity |] }

let create () =
  let rec t =
    lazy
      (let key =
         Domain.DLS.new_key (fun () ->
             let h = Lazy.force t in
             let shard = fresh_shard () in
             Mutex.lock h.mutex;
             h.shards <- shard :: h.shards;
             Mutex.unlock h.mutex;
             shard)
       in
       { mutex = Mutex.create (); shards = []; key })
  in
  Lazy.force t

let record t v =
  let shard = Domain.DLS.get t.key in
  let i = index_of v in
  (* No allocation or call between these loads and stores: systhreads
     on this domain cannot be preempted mid-update. *)
  shard.buckets.(i) <- shard.buckets.(i) + 1;
  shard.scalars.(0) <- shard.scalars.(0) +. v;
  if v < shard.scalars.(1) then shard.scalars.(1) <- v;
  if v > shard.scalars.(2) then shard.scalars.(2) <- v

type snapshot = {
  counts : int array;
  count : int;
  sum : float;
  min : float;
  max : float;
}

let empty =
  { counts = Array.make num_buckets 0;
    count = 0;
    sum = 0.0;
    min = infinity;
    max = neg_infinity }

let snapshot t =
  let counts = Array.make num_buckets 0 in
  Mutex.lock t.mutex;
  let shards = t.shards in
  Mutex.unlock t.mutex;
  let sum = ref 0.0 and mn = ref infinity and mx = ref neg_infinity in
  List.iter
    (fun shard ->
      for i = 0 to num_buckets - 1 do
        counts.(i) <- counts.(i) + shard.buckets.(i)
      done;
      sum := !sum +. shard.scalars.(0);
      if shard.scalars.(1) < !mn then mn := shard.scalars.(1);
      if shard.scalars.(2) > !mx then mx := shard.scalars.(2))
    shards;
  let count = Array.fold_left ( + ) 0 counts in
  { counts; count; sum = !sum; min = !mn; max = !mx }

let merge a b =
  let counts = Array.make num_buckets 0 in
  for i = 0 to num_buckets - 1 do
    counts.(i) <- a.counts.(i) + b.counts.(i)
  done;
  { counts;
    count = a.count + b.count;
    sum = a.sum +. b.sum;
    min = Float.min a.min b.min;
    max = Float.max a.max b.max }

let of_samples samples =
  let counts = Array.make num_buckets 0 in
  let sum = ref 0.0 and mn = ref infinity and mx = ref neg_infinity in
  Array.iter
    (fun v ->
      let i = index_of v in
      counts.(i) <- counts.(i) + 1;
      sum := !sum +. v;
      if v < !mn then mn := v;
      if v > !mx then mx := v)
    samples;
  { counts;
    count = Array.length samples;
    sum = !sum;
    min = !mn;
    max = !mx }

let quantile s q =
  if s.count = 0 then nan
  else begin
    (* Nearest-rank, matching Metrics.percentile: the rank-th smallest
       sample, rank = ceil (q * n) clamped into [1, n]. *)
    let rank = int_of_float (Float.ceil (q *. float_of_int s.count)) in
    let rank = max 1 (min s.count rank) in
    let i = ref 0 and seen = ref 0 in
    while !seen < rank && !i < num_buckets do
      seen := !seen + s.counts.(!i);
      incr i
    done;
    let v = midpoint (!i - 1) in
    Float.max s.min (Float.min s.max v)
  end

let mean s = if s.count = 0 then nan else s.sum /. float_of_int s.count

let clear t =
  Mutex.lock t.mutex;
  List.iter
    (fun shard ->
      Array.fill shard.buckets 0 num_buckets 0;
      shard.scalars.(0) <- 0.0;
      shard.scalars.(1) <- infinity;
      shard.scalars.(2) <- neg_infinity)
    t.shards;
  Mutex.unlock t.mutex
