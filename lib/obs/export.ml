type labels = (string * string) list

type family =
  | Counter of { name : string; help : string; series : (labels * float) list }
  | Gauge of { name : string; help : string; series : (labels * float) list }
  | Histogram of { name : string; help : string; series : (labels * Hist.snapshot) list }

let escape_label v =
  let buf = Buffer.create (String.length v + 4) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let add_labels buf labels =
  match labels with
  | [] -> ()
  | _ ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf k;
          Buffer.add_string buf "=\"";
          Buffer.add_string buf (escape_label v);
          Buffer.add_char buf '"')
        labels;
      Buffer.add_char buf '}'

let fmt_value v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.12g" v

let add_sample buf name labels v =
  Buffer.add_string buf name;
  add_labels buf labels;
  Buffer.add_char buf ' ';
  Buffer.add_string buf (fmt_value v);
  Buffer.add_char buf '\n'

let add_header buf name help kind =
  Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name help);
  Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)

let render families =
  let buf = Buffer.create 4096 in
  List.iter
    (fun family ->
      match family with
      | Counter { name; help; series } ->
          add_header buf name help "counter";
          List.iter (fun (labels, v) -> add_sample buf name labels v) series
      | Gauge { name; help; series } ->
          add_header buf name help "gauge";
          List.iter (fun (labels, v) -> add_sample buf name labels v) series
      | Histogram { name; help; series } ->
          add_header buf name help "histogram";
          List.iter
            (fun (labels, (s : Hist.snapshot)) ->
              let cum = ref 0 in
              for i = 0 to Hist.num_buckets - 1 do
                let c = s.Hist.counts.(i) in
                if c > 0 then begin
                  cum := !cum + c;
                  let _, hi = Hist.bounds i in
                  add_sample buf (name ^ "_bucket")
                    (labels @ [ ("le", fmt_value hi) ])
                    (float_of_int !cum)
                end
              done;
              add_sample buf (name ^ "_bucket")
                (labels @ [ ("le", "+Inf") ])
                (float_of_int s.Hist.count);
              add_sample buf (name ^ "_sum") labels s.Hist.sum;
              add_sample buf (name ^ "_count") labels (float_of_int s.Hist.count))
            series)
    families;
  Buffer.contents buf
