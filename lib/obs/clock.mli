(** Monotonic process clock.

    All solver timing (span durations, ILP time limits, bench wall
    clocks) goes through this module rather than [Unix.gettimeofday]:
    the wall clock is not monotonic — an NTP step mid-run can make
    elapsed times negative or blow a time limit that never expired.
    Backed by [CLOCK_MONOTONIC] (POSIX) / [QueryPerformanceCounter]
    (Windows); safe to call from any domain. *)

(** Nanoseconds from an arbitrary fixed origin (typically boot).
    Strictly non-decreasing within a process. *)
val now_ns : unit -> int64

(** Same clock in seconds. Differences of two [now_s] readings are
    elapsed wall time, immune to system clock adjustments. *)
val now_s : unit -> float

(** [elapsed_s ~since] is [now_s () -. since]. *)
val elapsed_s : since:float -> float
