(** Tracing and metrics for the solve pipeline.

    Design goals, in order:

    - {b Zero-cost when off}: every probe starts with a single branch on
      a disabled flag and touches nothing else — no allocation, no
      clock read, no shared state. The solvers stay instrumented in
      production builds.
    - {b No contention when on}: each domain records into its own
      buffer, reached via domain-local storage. The hot path never
      takes a lock; the global registry is only locked when a domain
      allocates its buffer (once per domain) and at {!drain}.
    - {b Deterministic aggregation}: {!drain} merges buffers in a fixed
      order, so aggregate counts are a function of the work performed,
      not of the scheduling — a sweep records the same span counts and
      counter totals under [--jobs 1] and [--jobs N].

    Lifecycle: {!enable} clears all buffers and starts a recording
    epoch; instrumented code runs; {!disable} (optional) then {!drain}
    collects the merged events and metrics. [enable]/[drain] must be
    called while no instrumented work is in flight — between pool
    batches, not during one. *)

(** One completed span: a named interval on a domain's track.
    Timestamps are monotonic nanoseconds relative to the {!enable}
    epoch. *)
type event = {
  name : string;
  track : int;  (** Recording domain's id: one trace track per domain. *)
  start_ns : int64;
  dur_ns : int64;
  args : (string * string) list;  (** Free-form attribution. *)
}

(** Aggregated counter/gauge state, also the shape of span summaries:
    [count] updates, their [total], and the largest single update. *)
type metric = { name : string; count : int; total : float; max : float }

val enabled : unit -> bool

(** Start a recording epoch: clears every buffer, re-arms the flag.
    Timestamps of subsequent events are relative to this call. *)
val enable : unit -> unit

(** Stop recording. Buffered data survives until the next {!enable}. *)
val disable : unit -> unit

(** [span name f] runs [f] and, when tracing is enabled, records its
    wall time as an event named [name] on the calling domain's track.
    The span is recorded even when [f] raises. [args] are evaluated at
    call time — for attribution only known afterwards, use
    {!start}/{!finish}. *)
val span : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a

type token
(** Start-of-span witness from {!start}; carries the start timestamp,
    or marks the span dead when tracing was off at the start. *)

(** Explicit span opening, for attribution computed after the work
    (e.g. whether a node LP warm-started). Cost when disabled: one
    branch. *)
val start : unit -> token

(** Close a span opened by {!start}. A span whose [start] ran while
    tracing was disabled is dropped — never a garbage duration. Guard
    any argument construction with {!enabled} to keep the disabled
    path allocation-free. *)
val finish : ?args:(string * string) list -> string -> token -> unit

(** [incr name] bumps counter [name] by [n] (default 1). *)
val incr : ?n:int -> string -> unit

(** [add name v] accumulates [v] into counter [name]. *)
val add : string -> float -> unit

(** [gauge name v] records a sampled level: [total] holds the last
    sample, [max] the high-water mark, [count] the sample count. *)
val gauge : string -> float -> unit

(** Merge every domain's buffer. Events are ordered by (track, start
    time); metrics are merged by name and sorted. Does not clear —
    {!enable} does. *)
val drain : unit -> event list * metric list

(** Per-name aggregation of span events: [count] spans, [total]/[max]
    duration in {b seconds}. Sorted by name — the deterministic shape
    compared across job counts. *)
val span_summary : event list -> metric list
