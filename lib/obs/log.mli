(** Structured request logging: one JSON event per line (NDJSON).

    The daemon emits one event per request — trace id, op, canon key
    digest, cache hit/miss, solver, verdict, shed reason, queue wait,
    duration — so an overload incident leaves a record that outlives
    the stats counters. Every event is rendered with {!Json.to_string},
    whose string escaping ([\n] → [\\n], ["] → [\\"], control bytes →
    [\\u00xx]) guarantees the one-event-per-line invariant even when a
    client puts newlines in a trace id or an inline SOC core name —
    the log-injection property [Proto_fuzz] hammers on.

    Writers serialize on an internal mutex; an event is a single
    buffered write + flush, so concurrent connection threads never
    interleave bytes within a line. *)

type t

(** Where events go. *)
type sink =
  | Stderr
  | File of { path : string; max_bytes : int }
      (** Size-rotated: when the file exceeds [max_bytes] it is renamed
          to [path ^ ".1"] (replacing any previous rotation) and a
          fresh file is opened. Two generations bound disk use at
          roughly [2 * max_bytes]. *)
  | Fn of (string -> unit)
      (** Receives each rendered line {e without} the trailing newline.
          Used by tests and the proto-fuzzer to validate lines. *)

(** [create ?only_trace sink] opens a logger. With [only_trace = Some
    id], events whose ["trace_id"] field differs from [id] are dropped
    — the [--log-trace] filter for following one request through a
    busy daemon. *)
val create : ?only_trace:string -> sink -> t

(** [event t fields] renders [Obj fields] compactly and writes it as
    one line. A ["ts"] field (wall-clock Unix seconds) is prepended
    unless the caller already supplied one. Never raises: a sink write
    failure (disk full, closed stderr) is swallowed — telemetry must
    not take down the request path. *)
val event : t -> (string * Json.t) list -> unit

(** Flush and close file handles. The logger must not be used after. *)
val close : t -> unit
