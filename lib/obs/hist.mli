(** Fixed-size log-bucketed latency histograms (HDR-style).

    The service's previous latency telemetry was a 1024-sample ring: at
    load-generator rates it held ~10 ms of history, so "p99" described
    the last instant, not the run. A histogram has no window — every
    sample since the last {!clear} contributes — and a log-bucketed one
    does it in constant space with bounded {e relative} error, which is
    the error that matters across six decades of latency.

    {2 Bucket geometry}

    Each binary octave [[2^(e-1), 2^e)] is split into
    {!sub_buckets}[ = 64] equal-width linear sub-buckets. A bucket's
    width is therefore [2^(e-1)/64], and reporting its midpoint is off
    by at most half a width: a worst-case relative error of
    [1/128 < 0.8%] — comfortably inside the ~1% design target and the
    2% acceptance bound asserted in [test/test_telemetry.ml].
    {!num_buckets}[ = 4096] buckets (64 octaves) span [~1e-6] to
    [~8.8e12]; anything outside clamps to the end buckets, and
    non-positive or NaN samples clamp to bucket 0. Count, sum, min and
    max are tracked exactly regardless of clamping, and quantiles are
    clamped into [[min, max]], so small histograms stay exact at the
    extremes.

    {2 Concurrency}

    Recording is lock-free and allocation-free: each domain lazily
    registers a private shard ([Domain.DLS]) and bumps plain [int]
    array cells. The increment sequence has no allocation point or
    function call between load and store, so systhreads sharing a
    domain cannot interleave inside it — the same argument {!Obs}'s
    counter cells rely on. {!snapshot} merges all shards under the
    registry mutex; a snapshot taken while writers are active is a
    consistent-enough view (each cell read is atomic; totals may trail
    in-flight samples by a few). *)

type t

(** Number of buckets in every histogram ([4096]). *)
val num_buckets : int

(** Linear sub-buckets per binary octave ([64]). *)
val sub_buckets : int

val create : unit -> t

(** [record t v] adds one sample. Lock-free; safe from any domain or
    thread. *)
val record : t -> float -> unit

(** [index_of v] is the bucket [v] lands in — exposed for tests and for
    building snapshots from offline sample arrays. *)
val index_of : float -> int

(** [bounds i] is the [(lo, hi)] value range of bucket [i]; samples in
    the bucket are reported as the midpoint. Raises [Invalid_argument]
    when [i] is out of range. *)
val bounds : int -> float * float

(** Immutable merged view of a histogram at one instant. *)
type snapshot = {
  counts : int array;  (** Per-bucket sample counts, length {!num_buckets}. *)
  count : int;  (** Total samples = sum of [counts]. *)
  sum : float;  (** Exact sum of recorded values. *)
  min : float;  (** Exact minimum; [+infinity] when empty. *)
  max : float;  (** Exact maximum; [neg_infinity] when empty. *)
}

val empty : snapshot

(** [snapshot t] merges every domain's shard. *)
val snapshot : t -> snapshot

(** [merge a b] combines two snapshots as if their samples had been
    recorded into one histogram. Associative and commutative up to
    float-sum rounding in [sum]. *)
val merge : snapshot -> snapshot -> snapshot

(** [of_samples a] builds a snapshot offline — how the bench and
    [tamopt load] turn recorded latency arrays into p999s. *)
val of_samples : float array -> snapshot

(** [quantile s q] for [q] in [[0, 1]] follows the same nearest-rank
    convention as [Metrics.percentile] (rank [ceil (q * count)]),
    returning the midpoint of the bucket holding that rank, clamped
    into [[s.min, s.max]]. [nan] when the snapshot is empty. *)
val quantile : snapshot -> float -> float

(** [mean s] is [s.sum /. count]; [nan] when empty. *)
val mean : snapshot -> float

(** [clear t] zeroes every shard (under the registry mutex). Samples
    recorded concurrently with a clear may land on either side. *)
val clear : t -> unit
