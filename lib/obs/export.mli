(** Prometheus text-exposition rendering (version 0.0.4).

    Pure: turns metric families into the text format a Prometheus
    scraper expects. The HTTP listener that serves the result lives in
    [lib/service] (this library does not link [unix]); the golden test
    in [test/test_telemetry.ml] pins the exact output format. *)

type labels = (string * string) list

type family =
  | Counter of { name : string; help : string; series : (labels * float) list }
  | Gauge of { name : string; help : string; series : (labels * float) list }
  | Histogram of { name : string; help : string; series : (labels * Hist.snapshot) list }
      (** Rendered as cumulative [_bucket{le="..."}] samples over the
          non-empty {!Hist} buckets (each labelled with the bucket's
          upper bound), a [le="+Inf"] bucket equal to [_count], plus
          [_sum] and [_count]. *)

(** [render families] produces the full exposition body: one [# HELP] /
    [# TYPE] header per family followed by its samples, families in the
    order given. Label values are escaped (backslash, double quote,
    newline) per the
    format spec. Numbers print integrally when integral, so counter
    samples survive text round-trips exactly. *)
val render : family list -> string
