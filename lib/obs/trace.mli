(** Chrome trace-event export.

    Writes the drained event stream in the Trace Event Format consumed
    by Perfetto ([ui.perfetto.dev]) and [chrome://tracing]: a
    ["traceEvents"] array of complete ("ph":"X") events with
    microsecond timestamps, one [tid] (track) per recording domain,
    plus ["thread_name"] metadata rows labelling each track. Merged
    counter state rides along under ["soctamMetrics"] so a trace file
    is self-contained. *)

(** [to_json ?metrics events] builds the trace document. *)
val to_json : ?metrics:Obs.metric list -> Obs.event list -> Json.t

(** [write path ?metrics events] writes the pretty-printed document to
    [path]. *)
val write : string -> ?metrics:Obs.metric list -> Obs.event list -> unit
