type sink =
  | Stderr
  | File of { path : string; max_bytes : int }
  | Fn of (string -> unit)

type file_out = {
  path : string;
  max_bytes : int;
  mutable oc : out_channel;
  mutable bytes : int;
}

type out = O_stderr | O_file of file_out | O_fn of (string -> unit)

type t = { mutex : Mutex.t; out : out; only_trace : string option }

let open_file path = open_out_gen [ Open_wronly; Open_creat; Open_append ] 0o644 path

let create ?only_trace sink =
  let out =
    match sink with
    | Stderr -> O_stderr
    | Fn f -> O_fn f
    | File { path; max_bytes } ->
        let oc = open_file path in
        O_file { path; max_bytes; oc; bytes = out_channel_length oc }
  in
  { mutex = Mutex.create (); out; only_trace }

let rotate f =
  close_out_noerr f.oc;
  (match Sys.rename f.path (f.path ^ ".1") with
  | () -> ()
  | exception Sys_error _ -> ());
  f.oc <- open_file f.path;
  f.bytes <- 0

let write t line =
  match t.out with
  | O_stderr ->
      prerr_string line;
      prerr_newline ()
  | O_fn f -> f line
  | O_file f ->
      if f.bytes > f.max_bytes then rotate f;
      output_string f.oc line;
      output_char f.oc '\n';
      flush f.oc;
      f.bytes <- f.bytes + String.length line + 1

let event t fields =
  let keep =
    match t.only_trace with
    | None -> true
    | Some id -> (
        match List.assoc_opt "trace_id" fields with
        | Some (Json.Str s) -> String.equal s id
        | _ -> false)
  in
  if keep then begin
    let fields =
      if List.mem_assoc "ts" fields then fields
      else ("ts", Json.Num (Unix.gettimeofday ())) :: fields
    in
    let line = Json.to_string (Json.Obj fields) in
    Mutex.lock t.mutex;
    (try write t line with Sys_error _ | Unix.Unix_error _ -> ());
    Mutex.unlock t.mutex
  end

let close t =
  Mutex.lock t.mutex;
  (match t.out with
  | O_file f -> close_out_noerr f.oc
  | O_stderr | O_fn _ -> ());
  Mutex.unlock t.mutex
