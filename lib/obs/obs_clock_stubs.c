/* Monotonic clock primitive for Soctam_obs.Clock.

   CLOCK_MONOTONIC is immune to NTP steps and wall-clock adjustments,
   which matters for solver time limits and span durations: a wall
   clock jumping backwards mid-run would otherwise corrupt both. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>

#if defined(_WIN32)
#include <windows.h>

CAMLprim value soctam_obs_monotonic_ns(value unit)
{
  static LARGE_INTEGER freq;
  LARGE_INTEGER now;
  if (freq.QuadPart == 0)
    QueryPerformanceFrequency(&freq);
  QueryPerformanceCounter(&now);
  return caml_copy_int64((int64_t)((double)now.QuadPart * 1e9
                                   / (double)freq.QuadPart));
}

#else
#include <time.h>

CAMLprim value soctam_obs_monotonic_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_int64((int64_t)ts.tv_sec * 1000000000 + ts.tv_nsec);
}

#endif
