external now_ns : unit -> int64 = "soctam_obs_monotonic_ns"

let now_s () = Int64.to_float (now_ns ()) /. 1e9
let elapsed_s ~since = now_s () -. since
