module Json = Soctam_obs.Json

let known_error_codes =
  [ "bad_request"; "overloaded"; "shutting_down"; "deadline_exceeded";
    "internal" ]

(* What a frame is entitled to expect of its reply. Every frame gets
   the well-formedness checks; [Must_fail]/[Must_ok] additionally pin
   the [ok] verdict. *)
type expect = Any | Must_fail | Must_ok

type frame = {
  line : string;
  expect : expect;
  id : int option;  (** When set, the reply must echo it. *)
}

let with_id i fields = Printf.sprintf {|{"id":%d,%s}|} i fields

(* A well-formed solve line, also the raw material for truncation. The
   instance is deliberately tiny: protocol fuzzing must stress the
   parser and validator, not the solvers. *)
let valid_solve_fields =
  {|"op":"solve","soc":"rnd:3:3","solver":"heuristic","num_buses":1,"total_width":2|}

let random_word st =
  let len = 1 + Random.State.int st 8 in
  String.init len (fun _ ->
      Char.chr (Char.code 'a' + Random.State.int st 26))

let garbage st =
  let alphabet = "{}[]\",:xyz0123456789 \\tesop" in
  let len = Random.State.int st 60 in
  String.init len (fun _ ->
      alphabet.[Random.State.int st (String.length alphabet)])

let pick st l = List.nth l (Random.State.int st (List.length l))

let gen_frame st i =
  match Random.State.int st 14 with
  | 0 ->
      (* Raw garbage: almost never valid JSON, and when it accidentally
         is, it is not a valid request object. *)
      let s = garbage st in
      let expect =
        (* A garbage line could parse as a JSON scalar/array (still
           bad_request) but, pathologically, also as an object like
           {} — which is a bad_request too (no op). Objects with a
           valid "op" cannot arise from this alphabet ('"op"' needs
           a matched quote pattern the generator can produce!), so be
           conservative: only pin the verdict when it cannot be a
           valid request. *)
        if String.length s >= 2 && String.contains s '"' then Any
        else Must_fail
      in
      { line = s; expect; id = None }
  | 1 ->
      (* Strict prefix of a valid object: always unbalanced, so always
         a parse error. *)
      let full = with_id i valid_solve_fields in
      let len = Random.State.int st (String.length full) in
      { line = String.sub full 0 len; expect = Must_fail; id = None }
  | 2 ->
      (* Valid JSON that is not an object. *)
      { line = pick st [ "null"; "true"; "42"; {|"solve"|}; "[]"; "[1,[2,[3]]]"; "-0.5" ];
        expect = Must_fail;
        id = None }
  | 3 ->
      (* Objects with no (usable) op. *)
      { line = pick st [ "{}"; {|{"id":7}|}; {|{"id":null,"op":null}|} ];
        expect = Must_fail;
        id = None }
  | 4 ->
      let op = random_word st in
      { line = with_id i (Printf.sprintf {|"op":"%s"|} op);
        expect = Must_fail;
        id = Some i }
  | 5 ->
      (* Wrongly-typed op. *)
      { line =
          with_id i
            (pick st [ {|"op":123|}; {|"op":["solve"]|}; {|"op":{"x":1}|} ]);
        expect = Must_fail;
        id = Some i }
  | 6 ->
      (* Solve with missing required fields. *)
      { line =
          with_id i
            (pick st
               [ {|"op":"solve"|};
                 {|"op":"solve","soc":"s1"|};
                 {|"op":"solve","num_buses":2,"total_width":8|};
                 {|"op":"sweep","soc":"s1","num_buses":2|} ]);
        expect = Must_fail;
        id = Some i }
  | 7 ->
      (* Solve with malformed numeric fields. *)
      { line =
          with_id i
            (pick st
               [ {|"op":"solve","soc":"s1","num_buses":0,"total_width":8|};
                 {|"op":"solve","soc":"s1","num_buses":-3,"total_width":8|};
                 {|"op":"solve","soc":"s1","num_buses":2.5,"total_width":8|};
                 {|"op":"solve","soc":"s1","num_buses":"two","total_width":8|};
                 {|"op":"solve","soc":"s1","num_buses":9,"total_width":4|};
                 {|"op":"solve","soc":"s1","num_buses":2,"total_width":-1|};
                 {|"op":"solve","soc":"s1","num_buses":2,"total_width":1e308|} ]);
        expect = Must_fail;
        id = Some i }
  | 8 ->
      (* Bogus SOC specs, named and inline. *)
      { line =
          with_id i
            (pick st
               [ {|"op":"solve","soc":"nope","num_buses":1,"total_width":2|};
                 {|"op":"solve","soc":"rnd:x:y","num_buses":1,"total_width":2|};
                 {|"op":"solve","soc":"file:/nonexistent.soc","num_buses":1,"total_width":2|};
                 {|"op":"solve","soc":{"name":"x","cores":[]},"num_buses":1,"total_width":2|};
                 {|"op":"solve","soc":{"name":"x","cores":[{"name":"a","inputs":1,"outputs":1,"patterns":0}]},"num_buses":1,"total_width":2|};
                 {|"op":"solve","soc":{"name":"x","cores":[{"name":"a","inputs":1,"outputs":1,"patterns":5},{"name":"a","inputs":2,"outputs":2,"patterns":5}]},"num_buses":1,"total_width":2|} ]);
        expect = Must_fail;
        id = Some i }
  | 9 ->
      (* Deep nesting: the parser must either accept or reject it
         cleanly, never blow the handler up. *)
      let depth = 50 + Random.State.int st 150 in
      let deep =
        String.concat "" (List.init depth (fun _ -> "["))
        ^ "1"
        ^ String.concat "" (List.init depth (fun _ -> "]"))
      in
      { line = pick st [ deep; with_id i (Printf.sprintf {|"op":%s|} deep) ];
        expect = Any;
        id = None }
  | 10 ->
      (* Oversized strings and unknown fields on a valid op. *)
      let pad = String.make (1000 + Random.State.int st 3000) 'x' in
      { line =
          with_id i
            (pick st
               [ Printf.sprintf {|"op":"ping","%s":1|} pad;
                 Printf.sprintf {|"op":"ping","pad":"%s"|} pad ]);
        expect = Any;
        id = None }
  | 11 ->
      (* Duplicate keys: whichever wins, the reply must be well
         formed. *)
      { line =
          pick st
            [ {|{"op":"ping","op":"zzz"}|};
              {|{"id":1,"id":2,"op":"ping"}|} ];
        expect = Any;
        id = None }
  | 12 ->
      (* Sleep edge cases: negative, missing and non-numeric
         durations. Valid sleeps stay tiny. *)
      { line =
          with_id i
            (pick st
               [ {|"op":"sleep","ms":-1|};
                 {|"op":"sleep"|};
                 {|"op":"sleep","ms":"x"|};
                 {|"op":"sleep","ms":1|} ]);
        expect = Any;
        id = Some i }
  | _ ->
      (* Control group: valid requests must keep working mid-storm. *)
      { line =
          with_id i
            (pick st
               [ {|"op":"ping"|}; {|"op":"stats"|}; valid_solve_fields ]);
        expect = Must_ok;
        id = Some i }

let validate_reply frame reply =
  let err fmt =
    Printf.ksprintf
      (fun msg ->
        Error
          (Printf.sprintf "%s\n  frame: %s\n  reply: %s" msg frame.line
             reply))
      fmt
  in
  match Json.parse reply with
  | Error msg -> err "reply is not JSON (%s)" msg
  | Ok (Json.Obj _ as r) -> (
      let id_ok =
        match frame.id with
        | None -> Ok ()
        | Some i -> (
            match Json.member "id" r with
            | Some (Json.Num n) when n = float_of_int i -> Ok ()
            | other ->
                err "id %d not echoed (got %s)" i
                  (match other with
                  | Some j -> Json.to_string j
                  | None -> "nothing"))
      in
      match id_ok with
      | Error _ as e -> e
      | Ok () -> (
          match Json.member "ok" r, frame.expect with
          | Some (Json.Bool true), (Any | Must_ok) -> Ok ()
          | Some (Json.Bool true), Must_fail ->
              err "invalid frame was accepted"
          | Some (Json.Bool false), Must_ok ->
              err "valid control frame was rejected"
          | Some (Json.Bool false), (Any | Must_fail) -> (
              match Json.member "error" r with
              | None -> err "ok:false without an error object"
              | Some e -> (
                  match Json.member "code" e, Json.member "message" e with
                  | Some (Json.Str code), Some (Json.Str _) ->
                      if List.mem code known_error_codes then Ok ()
                      else err "unknown error code %S" code
                  | _ -> err "error object lacks string code/message"))
          | _ -> err "reply has no boolean \"ok\""))
  | Ok _ -> err "reply is not a JSON object"

let run ?(log = fun _ -> ()) ~handle ~seed ~budget () =
  if budget < 0 then invalid_arg "Proto_fuzz.run: budget < 0";
  let st = Random.State.make [| seed; 0xbadf0 |] in
  let rec loop i =
    if i >= budget then begin
      (* The storm is over; the daemon must still be alive and sane. *)
      let frame =
        { line = {|{"id":424242,"op":"ping"}|};
          expect = Must_ok;
          id = Some 424242 }
      in
      match validate_reply frame (handle frame.line) with
      | Ok () ->
          log
            (Printf.sprintf
               "proto-fuzz: %d frames, every reply well-formed (seed %d)"
               budget seed);
          Ok ()
      | Error msg -> Error ("post-storm health check failed: " ^ msg)
    end
    else begin
      if i > 0 && i mod 200 = 0 then
        log (Printf.sprintf "proto-fuzz: %d/%d frames" i budget);
      let frame = gen_frame st i in
      match handle frame.line with
      | exception exn ->
          Error
            (Printf.sprintf "frame %d: handler raised %s\n  frame: %s" i
               (Printexc.to_string exn) frame.line)
      | reply -> (
          match validate_reply frame reply with
          | Ok () -> loop (i + 1)
          | Error msg -> Error (Printf.sprintf "frame %d: %s" i msg))
    end
  in
  loop 0
