module Json = Soctam_obs.Json

let known_error_codes =
  [ "bad_request"; "overloaded"; "shutting_down"; "deadline_exceeded";
    "internal" ]

(* What a frame is entitled to expect of its reply. Every frame gets
   the well-formedness checks; [Must_fail]/[Must_ok] additionally pin
   the [ok] verdict. *)
type expect = Any | Must_fail | Must_ok

type frame = {
  line : string;
  expect : expect;
  id : int option;  (** When set, the reply must echo it. *)
  trace : string option;  (** When set, the reply must echo it too. *)
}

let with_id i fields = Printf.sprintf {|{"id":%d,%s}|} i fields

(* A well-formed solve line, also the raw material for truncation. The
   instance is deliberately tiny: protocol fuzzing must stress the
   parser and validator, not the solvers. *)
let valid_solve_fields =
  {|"op":"solve","soc":"rnd:3:3","solver":"heuristic","num_buses":1,"total_width":2|}

let random_word st =
  let len = 1 + Random.State.int st 8 in
  String.init len (fun _ ->
      Char.chr (Char.code 'a' + Random.State.int st 26))

let garbage st =
  let alphabet = "{}[]\",:xyz0123456789 \\tesop" in
  let len = Random.State.int st 60 in
  String.init len (fun _ ->
      alphabet.[Random.State.int st (String.length alphabet)])

let pick st l = List.nth l (Random.State.int st (List.length l))

(* Strings built to break naive log writers: newlines end an NDJSON
   event early, quotes and backslashes escape out of a JSON string,
   control bytes corrupt terminals. All are legal request content — the
   daemon's Json escaping must neutralize them. *)
let hostile_string st =
  let pieces =
    [| "\n"; "\r"; "\t"; "\""; "\\"; "\x01"; "{"; "}"; ","; ":"; "a"; "Z";
       "0"; " "; "\xf0\x9f\x92\xa5" |]
  in
  let len = 1 + Random.State.int st 10 in
  String.concat ""
    (List.init len (fun _ -> pieces.(Random.State.int st (Array.length pieces))))

let quoted s = Json.to_string (Json.Str s)

let gen_frame st i =
  match Random.State.int st 17 with
  | 0 ->
      (* Raw garbage: almost never valid JSON, and when it accidentally
         is, it is not a valid request object. *)
      let s = garbage st in
      let expect =
        (* A garbage line could parse as a JSON scalar/array (still
           bad_request) but, pathologically, also as an object like
           {} — which is a bad_request too (no op). Objects with a
           valid "op" cannot arise from this alphabet ('"op"' needs
           a matched quote pattern the generator can produce!), so be
           conservative: only pin the verdict when it cannot be a
           valid request. *)
        if String.length s >= 2 && String.contains s '"' then Any
        else Must_fail
      in
      { line = s; expect; id = None; trace = None }
  | 1 ->
      (* Strict prefix of a valid object: always unbalanced, so always
         a parse error. *)
      let full = with_id i valid_solve_fields in
      let len = Random.State.int st (String.length full) in
      { line = String.sub full 0 len; expect = Must_fail; id = None; trace = None }
  | 2 ->
      (* Valid JSON that is not an object. *)
      { line = pick st [ "null"; "true"; "42"; {|"solve"|}; "[]"; "[1,[2,[3]]]"; "-0.5" ];
        expect = Must_fail;
        id = None; trace = None }
  | 3 ->
      (* Objects with no (usable) op. *)
      { line = pick st [ "{}"; {|{"id":7}|}; {|{"id":null,"op":null}|} ];
        expect = Must_fail;
        id = None; trace = None }
  | 4 ->
      let op = random_word st in
      { line = with_id i (Printf.sprintf {|"op":"%s"|} op);
        expect = Must_fail;
        id = Some i; trace = None }
  | 5 ->
      (* Wrongly-typed op. *)
      { line =
          with_id i
            (pick st [ {|"op":123|}; {|"op":["solve"]|}; {|"op":{"x":1}|} ]);
        expect = Must_fail;
        id = Some i; trace = None }
  | 6 ->
      (* Solve with missing required fields. *)
      { line =
          with_id i
            (pick st
               [ {|"op":"solve"|};
                 {|"op":"solve","soc":"s1"|};
                 {|"op":"solve","num_buses":2,"total_width":8|};
                 {|"op":"sweep","soc":"s1","num_buses":2|} ]);
        expect = Must_fail;
        id = Some i; trace = None }
  | 7 ->
      (* Solve with malformed numeric fields. *)
      { line =
          with_id i
            (pick st
               [ {|"op":"solve","soc":"s1","num_buses":0,"total_width":8|};
                 {|"op":"solve","soc":"s1","num_buses":-3,"total_width":8|};
                 {|"op":"solve","soc":"s1","num_buses":2.5,"total_width":8|};
                 {|"op":"solve","soc":"s1","num_buses":"two","total_width":8|};
                 {|"op":"solve","soc":"s1","num_buses":9,"total_width":4|};
                 {|"op":"solve","soc":"s1","num_buses":2,"total_width":-1|};
                 {|"op":"solve","soc":"s1","num_buses":2,"total_width":1e308|} ]);
        expect = Must_fail;
        id = Some i; trace = None }
  | 8 ->
      (* Bogus SOC specs, named and inline. *)
      { line =
          with_id i
            (pick st
               [ {|"op":"solve","soc":"nope","num_buses":1,"total_width":2|};
                 {|"op":"solve","soc":"rnd:x:y","num_buses":1,"total_width":2|};
                 {|"op":"solve","soc":"file:/nonexistent.soc","num_buses":1,"total_width":2|};
                 {|"op":"solve","soc":{"name":"x","cores":[]},"num_buses":1,"total_width":2|};
                 {|"op":"solve","soc":{"name":"x","cores":[{"name":"a","inputs":1,"outputs":1,"patterns":0}]},"num_buses":1,"total_width":2|};
                 {|"op":"solve","soc":{"name":"x","cores":[{"name":"a","inputs":1,"outputs":1,"patterns":5},{"name":"a","inputs":2,"outputs":2,"patterns":5}]},"num_buses":1,"total_width":2|} ]);
        expect = Must_fail;
        id = Some i; trace = None }
  | 9 ->
      (* Deep nesting: the parser must either accept or reject it
         cleanly, never blow the handler up. *)
      let depth = 50 + Random.State.int st 150 in
      let deep =
        String.concat "" (List.init depth (fun _ -> "["))
        ^ "1"
        ^ String.concat "" (List.init depth (fun _ -> "]"))
      in
      { line = pick st [ deep; with_id i (Printf.sprintf {|"op":%s|} deep) ];
        expect = Any;
        id = None; trace = None }
  | 10 ->
      (* Oversized strings and unknown fields on a valid op. *)
      let pad = String.make (1000 + Random.State.int st 3000) 'x' in
      { line =
          with_id i
            (pick st
               [ Printf.sprintf {|"op":"ping","%s":1|} pad;
                 Printf.sprintf {|"op":"ping","pad":"%s"|} pad ]);
        expect = Any;
        id = None; trace = None }
  | 11 ->
      (* Duplicate keys: whichever wins, the reply must be well
         formed. *)
      { line =
          pick st
            [ {|{"op":"ping","op":"zzz"}|};
              {|{"id":1,"id":2,"op":"ping"}|} ];
        expect = Any;
        id = None; trace = None }
  | 12 ->
      (* Sleep edge cases: negative, missing and non-numeric
         durations. Valid sleeps stay tiny. *)
      { line =
          with_id i
            (pick st
               [ {|"op":"sleep","ms":-1|};
                 {|"op":"sleep"|};
                 {|"op":"sleep","ms":"x"|};
                 {|"op":"sleep","ms":1|} ]);
        expect = Any;
        id = Some i; trace = None }
  | 13 ->
      (* Malformed trace ids: wrong type or oversized. Must be refused
         — an unbounded id would let a client bloat every log line. *)
      let oversized = String.make (65 + Random.State.int st 200) 't' in
      { line =
          with_id i
            (pick st
               [ {|"op":"ping","trace_id":123|};
                 {|"op":"ping","trace_id":["x"]|};
                 {|"op":"ping","trace_id":{"a":1}|};
                 {|"op":"ping","trace_id":true|};
                 Printf.sprintf {|"op":"ping","trace_id":"%s"|} oversized;
                 Printf.sprintf {|%s,"trace_id":"%s"|} valid_solve_fields
                   oversized ]);
        expect = Must_fail;
        id = Some i;
        trace = None }
  | 14 ->
      (* Hostile but legal trace ids: embedded newlines, quotes,
         backslashes, control bytes. Valid requests; the id must come
         back byte-identical and the log must stay one line. *)
      let tid = hostile_string st in
      { line =
          with_id i
            (Printf.sprintf {|%s,"trace_id":%s|}
               (pick st [ {|"op":"ping"|}; valid_solve_fields ])
               (quoted tid));
        expect = Must_ok;
        id = Some i;
        trace = Some tid }
  | 15 ->
      (* Log injection through inline SOC core names. *)
      let n1 = "a" ^ hostile_string st in
      let n2 = "b" ^ hostile_string st in
      { line =
          with_id i
            (Printf.sprintf
               {|"op":"solve","soc":{"name":%s,"cores":[{"name":%s,"inputs":1,"outputs":1,"patterns":2},{"name":%s,"inputs":2,"outputs":1,"patterns":3}]},"num_buses":1,"total_width":2|}
               (quoted ("soc" ^ hostile_string st))
               (quoted n1) (quoted n2));
        expect = Must_ok;
        id = Some i;
        trace = None }
  | _ ->
      (* Control group: valid requests must keep working mid-storm. *)
      { line =
          with_id i
            (pick st
               [ {|"op":"ping"|}; {|"op":"stats"|}; valid_solve_fields ]);
        expect = Must_ok;
        id = Some i; trace = None }

let validate_reply frame reply =
  let err fmt =
    Printf.ksprintf
      (fun msg ->
        Error
          (Printf.sprintf "%s\n  frame: %s\n  reply: %s" msg frame.line
             reply))
      fmt
  in
  match Json.parse reply with
  | Error msg -> err "reply is not JSON (%s)" msg
  | Ok (Json.Obj _ as r) -> (
      let id_ok =
        match frame.id with
        | None -> Ok ()
        | Some i -> (
            match Json.member "id" r with
            | Some (Json.Num n) when n = float_of_int i -> Ok ()
            | other ->
                err "id %d not echoed (got %s)" i
                  (match other with
                  | Some j -> Json.to_string j
                  | None -> "nothing"))
      in
      let trace_ok =
        match frame.trace with
        | None -> Ok ()
        | Some s -> (
            match Json.member "trace_id" r with
            | Some (Json.Str s') when String.equal s s' -> Ok ()
            | other ->
                err "trace_id %s not echoed (got %s)" (Json.to_string (Json.Str s))
                  (match other with
                  | Some j -> Json.to_string j
                  | None -> "nothing"))
      in
      match (id_ok, trace_ok) with
      | (Error _ as e), _ | _, (Error _ as e) -> e
      | Ok (), Ok () -> (
          match Json.member "ok" r, frame.expect with
          | Some (Json.Bool true), (Any | Must_ok) -> Ok ()
          | Some (Json.Bool true), Must_fail ->
              err "invalid frame was accepted"
          | Some (Json.Bool false), Must_ok ->
              err "valid control frame was rejected"
          | Some (Json.Bool false), (Any | Must_fail) -> (
              match Json.member "error" r with
              | None -> err "ok:false without an error object"
              | Some e -> (
                  match Json.member "code" e, Json.member "message" e with
                  | Some (Json.Str code), Some (Json.Str _) ->
                      if List.mem code known_error_codes then Ok ()
                      else err "unknown error code %S" code
                  | _ -> err "error object lacks string code/message"))
          | _ -> err "reply has no boolean \"ok\""))
  | Ok _ -> err "reply is not a JSON object"

(* The structured-log contract under fire: whatever bytes the frames
   carried, every captured log line is exactly one parseable JSON
   object with the core schema fields, and no line contains a raw
   newline (one event per line). *)
let check_log_lines lines =
  let rec go n = function
    | [] -> Ok ()
    | line :: rest -> (
        let fail fmt =
          Printf.ksprintf
            (fun msg ->
              Error (Printf.sprintf "log line %d: %s\n  line: %S" n msg line))
            fmt
        in
        if String.contains line '\n' then fail "contains a raw newline"
        else
          match Json.parse line with
          | Error msg -> fail "not valid JSON (%s)" msg
          | Ok (Json.Obj _ as j) -> (
              let str k =
                match Json.member k j with
                | Some (Json.Str _) -> Ok ()
                | _ -> fail "missing string field %S" k
              in
              let num k =
                match Json.member k j with
                | Some (Json.Num _) -> Ok ()
                | _ -> fail "missing numeric field %S" k
              in
              match
                List.find_map
                  (fun check -> match check with Ok () -> None | Error e -> Some e)
                  [ str "trace_id"; str "op"; str "verdict"; num "ts";
                    num "duration_ms" ]
              with
              | Some e -> Error e
              | None -> go (n + 1) rest)
          | Ok _ -> fail "not a JSON object")
  in
  go 0 lines

let run ?(log = fun _ -> ()) ~handle ~seed ~budget () =
  if budget < 0 then invalid_arg "Proto_fuzz.run: budget < 0";
  let st = Random.State.make [| seed; 0xbadf0 |] in
  let rec loop i =
    if i >= budget then begin
      (* The storm is over; the daemon must still be alive and sane. *)
      let frame =
        { line = {|{"id":424242,"op":"ping"}|};
          expect = Must_ok;
          id = Some 424242;
          trace = None }
      in
      match validate_reply frame (handle frame.line) with
      | Ok () ->
          log
            (Printf.sprintf
               "proto-fuzz: %d frames, every reply well-formed (seed %d)"
               budget seed);
          Ok ()
      | Error msg -> Error ("post-storm health check failed: " ^ msg)
    end
    else begin
      if i > 0 && i mod 200 = 0 then
        log (Printf.sprintf "proto-fuzz: %d/%d frames" i budget);
      let frame = gen_frame st i in
      match handle frame.line with
      | exception exn ->
          Error
            (Printf.sprintf "frame %d: handler raised %s\n  frame: %s" i
               (Printexc.to_string exn) frame.line)
      | reply -> (
          match validate_reply frame reply with
          | Ok () -> loop (i + 1)
          | Error msg -> Error (Printf.sprintf "frame %d: %s" i msg))
    end
  in
  loop 0
