module Soc_file = Soctam_soc.Soc_file

type entry = {
  property : string;
  instance : Gen.instance;
  note : string option;
}

let body (e : entry) =
  let b = Buffer.create 512 in
  Buffer.add_string b (Printf.sprintf "property %s\n" e.property);
  Buffer.add_string b (Printf.sprintf "buses %d\n" e.instance.Gen.num_buses);
  Buffer.add_string b (Printf.sprintf "width %d\n" e.instance.Gen.total_width);
  List.iter
    (fun (i, j) -> Buffer.add_string b (Printf.sprintf "excl %d %d\n" i j))
    e.instance.Gen.excl;
  List.iter
    (fun (i, j) -> Buffer.add_string b (Printf.sprintf "co %d %d\n" i j))
    e.instance.Gen.co;
  (match e.instance.Gen.p_max with
  | None -> ()
  | Some p -> Buffer.add_string b (Printf.sprintf "pmax %.17g\n" p));
  Buffer.add_string b (Soc_file.to_string e.instance.Gen.soc);
  Buffer.contents b

let to_string (e : entry) =
  if
    String.exists
      (fun c -> c = ' ' || c = '\t' || c = '\n' || c = '\r')
      e.property
    || e.property = ""
  then invalid_arg "Corpus.to_string: property must be one word";
  let header =
    match e.note with
    | None -> ""
    | Some note ->
        String.concat ""
          (List.map
             (fun line -> "# " ^ line ^ "\n")
             (String.split_on_char '\n' note))
  in
  header ^ body e

let fail line fmt =
  Printf.ksprintf
    (fun msg -> Error (Printf.sprintf "line %d: %s" line msg))
    fmt

let of_string text =
  let ( let* ) = Result.bind in
  let lines = String.split_on_char '\n' text in
  let words s =
    String.split_on_char ' ' s |> List.filter (fun w -> w <> "")
  in
  let int_word line w =
    match int_of_string_opt w with
    | Some n -> Ok n
    | None -> fail line "%S is not an integer" w
  in
  (* Header directives stop at the first "soc" line; the rest is a
     Soc_file document. *)
  let rec header lineno acc = function
    | [] -> Error "missing \"soc <name>\" section"
    | line :: rest -> (
        match words line with
        | [] -> header (lineno + 1) acc rest
        | w :: _ when String.length w > 0 && w.[0] = '#' ->
            header (lineno + 1) acc rest
        | "soc" :: _ ->
            let soc_text =
              String.concat "\n" (line :: rest)
            in
            Ok (acc, soc_text)
        | [ "property"; p ] ->
            header (lineno + 1) (("property", (lineno, p)) :: acc) rest
        | [ "buses"; n ] ->
            header (lineno + 1) (("buses", (lineno, n)) :: acc) rest
        | [ "width"; n ] ->
            header (lineno + 1) (("width", (lineno, n)) :: acc) rest
        | [ "excl"; i; j ] ->
            header (lineno + 1) (("excl", (lineno, i ^ " " ^ j)) :: acc) rest
        | [ "co"; i; j ] ->
            header (lineno + 1) (("co", (lineno, i ^ " " ^ j)) :: acc) rest
        | [ "pmax"; p ] ->
            header (lineno + 1) (("pmax", (lineno, p)) :: acc) rest
        | keyword :: _ -> fail lineno "unknown directive %S" keyword)
  in
  let* directives, soc_text = header 1 [] lines in
  let directives = List.rev directives in
  let one key =
    match List.filter (fun (k, _) -> k = key) directives with
    | [ (_, v) ] -> Ok v
    | [] -> Error (Printf.sprintf "missing \"%s\" directive" key)
    | _ -> Error (Printf.sprintf "duplicate \"%s\" directive" key)
  in
  let pairs key =
    List.filter_map (fun (k, v) -> if k = key then Some v else None)
      directives
    |> List.fold_left
         (fun acc (line, v) ->
           let* acc = acc in
           match words v with
           | [ i; j ] ->
               let* i = int_word line i in
               let* j = int_word line j in
               Ok ((i, j) :: acc)
           | _ -> fail line "expected two integers"
           )
         (Ok [])
    |> Result.map List.rev
  in
  let at_most_one key =
    match List.filter (fun (k, _) -> k = key) directives with
    | [] -> Ok None
    | [ (_, v) ] -> Ok (Some v)
    | _ -> Error (Printf.sprintf "duplicate \"%s\" directive" key)
  in
  let* _, property = one "property" in
  let* bline, buses = one "buses" in
  let* buses = int_word bline buses in
  let* wline, width = one "width" in
  let* width = int_word wline width in
  let* excl = pairs "excl" in
  let* co = pairs "co" in
  let* p_max =
    (* Optional — entries predating the pack family have no pmax. *)
    let* pm = at_most_one "pmax" in
    match pm with
    | None -> Ok None
    | Some (line, v) -> (
        match float_of_string_opt v with
        | Some p -> Ok (Some p)
        | None -> fail line "%S is not a number" v)
  in
  let* soc = Soc_file.of_string soc_text in
  Ok
    { property;
      note = None;
      instance =
        { Gen.soc; num_buses = buses; total_width = width; excl; co; p_max } }

let filename (e : entry) =
  Printf.sprintf "%s-%s.soc" e.property
    (String.sub (Digest.to_hex (Digest.string (body e))) 0 8)

let mkdir_p dir =
  let rec make d =
    if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
      make (Filename.dirname d);
      (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
    end
  in
  make dir

let save ~dir entry =
  mkdir_p dir;
  let path = Filename.concat dir (filename entry) in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_string entry));
  path

let load_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> (
      match of_string text with
      | Ok entry -> Ok entry
      | Error msg -> Error (Printf.sprintf "%s: %s" path msg))
  | exception Sys_error msg -> Error msg

let load_dir dir =
  let ( let* ) = Result.bind in
  if not (Sys.file_exists dir) then Ok []
  else
    let names =
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun n -> Filename.check_suffix n ".soc")
      |> List.sort compare
    in
    List.fold_left
      (fun acc name ->
        let* acc = acc in
        let* entry = load_file (Filename.concat dir name) in
        Ok ((name, entry) :: acc))
      (Ok []) names
    |> Result.map List.rev
