module Problem = Soctam_core.Problem
module Exact = Soctam_core.Exact
module Ilp = Soctam_core.Ilp_formulation
module Heuristics = Soctam_core.Heuristics
module Annealing = Soctam_core.Annealing
module Width_dp = Soctam_core.Width_dp
module Verify = Soctam_core.Verify
module Soc = Soctam_soc.Soc
module Test_time = Soctam_soc.Test_time
module Canon = Soctam_service.Canon
module Race = Soctam_engine.Race
module Rect_sched = Soctam_sched.Rect_sched
module Profile = Soctam_sched.Profile
module Pack = Soctam_pack.Pack

type fault =
  | No_fault
  | Exact_off_by_one
  | Ilp_drop_exclusion
  | Heuristic_overclaim

let fault_name = function
  | No_fault -> "none"
  | Exact_off_by_one -> "exact-off-by-one"
  | Ilp_drop_exclusion -> "ilp-drop-exclusion"
  | Heuristic_overclaim -> "heuristic-overclaim"

let fault_names =
  List.map fault_name [ Exact_off_by_one; Ilp_drop_exclusion; Heuristic_overclaim ]

let fault_of_string = function
  | "none" -> Ok No_fault
  | "exact-off-by-one" -> Ok Exact_off_by_one
  | "ilp-drop-exclusion" -> Ok Ilp_drop_exclusion
  | "heuristic-overclaim" -> Ok Heuristic_overclaim
  | other ->
      Error
        (Printf.sprintf "unknown fault %S (one of: none, %s)" other
           (String.concat ", " fault_names))

type failure = { property : string; detail : string }

let properties =
  [ "exact_verified";
    "ilp_matches_exact";
    "alternate_fixpoint_optimal";
    "heuristic_within_bounds";
    "annealing_within_bounds";
    "permutation_invariant";
    "canon_key_invariant";
    "width_monotone";
    "relaxation_monotone";
    "warm_equals_cold";
    "presolve_equivalence";
    "race_matches_exact";
    "pack_bounds" ]

let ilp_width_cap = 8

(* The exact packer branches over permutations; past this many cores the
   oracle's per-instance cost stops being fuzz-friendly. *)
let pack_exact_core_cap = 6
let pack_exact_node_budget = 200_000

let fail property fmt =
  Printf.ksprintf (fun detail -> Error { property; detail }) fmt

let ( let* ) = Result.bind

let verdict = function
  | None -> "infeasible"
  | Some t -> Printf.sprintf "T=%d" t

(* The annealer's default 20k-iteration schedule is overkill for the
   tiny fuzz instances; a short schedule keeps the oracle at hundreds
   of instances per second without weakening the property (any
   feasible, verified outcome >= the optimum is acceptable). *)
let annealing_iterations = 1_500

(* Reverse the core order; constraint pairs move with the cores. Bus
   structure is untouched — this is exactly the relabelling the Canon
   cache key must be blind to. *)
let reversed_instance (inst : Gen.instance) =
  let n = Soc.num_cores inst.Gen.soc in
  let move i = n - 1 - i in
  let cores =
    List.init n (fun j -> Soc.core inst.Gen.soc (move j))
  in
  let remap = List.map (fun (a, b) -> (move a, move b)) in
  { inst with
    Gen.soc = Soc.make ~name:(Soc.name inst.Gen.soc) cores;
    excl = remap inst.Gen.excl;
    co = remap inst.Gen.co }

let check ?(fault = No_fault) ?(presolve = true) ?(cuts = true)
    (inst : Gen.instance) =
  let problem = Gen.problem_of_instance inst in
  let exact =
    match (Exact.solve problem).Exact.solution, fault with
    | Some (arch, t), Exact_off_by_one -> Some (arch, t - 1)
    | solution, _ -> solution
  in
  let exact_time = Option.map snd exact in
  (* exact_verified *)
  let* () =
    match exact with
    | None -> Ok ()
    | Some (arch, t) -> (
        match Verify.check problem arch ~claimed_time:t with
        | Ok () -> Ok ()
        | Error msg -> fail "exact_verified" "%s" msg)
  in
  (* ilp_matches_exact *)
  let* () =
    if Problem.total_width problem > ilp_width_cap then Ok ()
    else begin
      let ilp_problem =
        match fault, (Problem.constraints problem).Problem.exclusion_pairs with
        | Ilp_drop_exclusion, _ :: rest ->
            Problem.with_constraints problem
              { (Problem.constraints problem) with
                Problem.exclusion_pairs = rest }
        | _ -> problem
      in
      let ilp = Ilp.solve ~presolve ~cuts ilp_problem in
      if not ilp.Ilp.optimal then
        fail "ilp_matches_exact"
          "ILP lost its optimality claim (%d dropped nodes)"
          ilp.Ilp.stats.Ilp.dropped_nodes
      else
        match exact_time, ilp.Ilp.solution with
        | None, None -> Ok ()
        | Some t, None ->
            fail "ilp_matches_exact" "ILP infeasible but exact found T=%d" t
        | None, Some (_, t') ->
            fail "ilp_matches_exact"
              "ILP found T=%d on an exact-infeasible instance" t'
        | Some t, Some (arch, t') ->
            if t' <> t then
              fail "ilp_matches_exact" "ILP T=%d but exact T=%d" t' t
            else (
              (* Verify against the true problem: same T with a
                 constraint-violating architecture is still a bug. *)
              match Verify.check problem arch ~claimed_time:t' with
              | Ok () -> Ok ()
              | Error msg ->
                  fail "ilp_matches_exact" "ILP architecture rejected: %s"
                    msg)
    end
  in
  (* alternate_fixpoint_optimal *)
  let* () =
    match exact with
    | None -> Ok ()
    | Some (arch, t) -> (
        match Width_dp.alternate problem ~start:arch with
        | None ->
            fail "alternate_fixpoint_optimal"
              "P1/P2 alternation became infeasible from the optimum"
        | Some (_, t') ->
            if t' <> t then
              fail "alternate_fixpoint_optimal"
                "alternation reached T=%d from optimal T=%d" t' t
            else Ok ())
  in
  (* heuristic_within_bounds *)
  let* () =
    match Heuristics.solve ~seed:1 problem, exact_time with
    | None, _ -> Ok () (* greedy may get stuck on a feasible instance *)
    | Some o, None ->
        fail "heuristic_within_bounds"
          "heuristic found T=%d on an infeasible instance"
          o.Heuristics.test_time
    | Some o, Some t -> (
        let claimed =
          match fault with
          | Heuristic_overclaim -> o.Heuristics.test_time - 1
          | _ -> o.Heuristics.test_time
        in
        match Verify.check problem o.Heuristics.architecture
                ~claimed_time:claimed
        with
        | Error msg -> fail "heuristic_within_bounds" "%s" msg
        | Ok () ->
            if claimed < t then
              fail "heuristic_within_bounds"
                "heuristic T=%d beats the optimum T=%d" claimed t
            else Ok ())
  in
  (* annealing_within_bounds *)
  let* () =
    match
      Annealing.solve ~seed:1 ~iterations:annealing_iterations problem,
      exact_time
    with
    | None, _ -> Ok ()
    | Some o, None ->
        fail "annealing_within_bounds"
          "annealing found T=%d on an infeasible instance"
          o.Annealing.test_time
    | Some o, Some t -> (
        match Verify.check problem o.Annealing.architecture
                ~claimed_time:o.Annealing.test_time
        with
        | Error msg -> fail "annealing_within_bounds" "%s" msg
        | Ok () ->
            if o.Annealing.test_time < t then
              fail "annealing_within_bounds"
                "annealing T=%d beats the optimum T=%d"
                o.Annealing.test_time t
            else Ok ())
  in
  let reversed = reversed_instance inst in
  (* permutation_invariant *)
  let* () =
    let exact' = (Exact.solve (Gen.problem_of_instance reversed)).Exact.solution in
    match exact_time, Option.map snd exact' with
    | None, None -> Ok ()
    | Some t, Some t' when t = t' -> Ok ()
    | v, v' ->
        fail "permutation_invariant" "core order changes the answer: %s vs %s"
          (verdict v) (verdict v')
  in
  (* canon_key_invariant *)
  let* () =
    let key (i : Gen.instance) =
      (Canon.of_instance ~soc:i.Gen.soc ~time_model:Test_time.Serialization
         ~constraints:
           { Problem.exclusion_pairs = i.Gen.excl; co_pairs = i.Gen.co }
         ~solver:"exact" ~num_buses:i.Gen.num_buses
         ~total_width:i.Gen.total_width ())
        .Canon.key
    in
    if key inst = key reversed then Ok ()
    else
      fail "canon_key_invariant"
        "canonical cache key differs under core relabelling"
  in
  (* width_monotone *)
  let* () =
    let wider =
      Gen.problem_of_instance
        { inst with Gen.total_width = inst.Gen.total_width + 1 }
    in
    match exact_time, Option.map snd (Exact.solve wider).Exact.solution with
    | None, None -> Ok ()
    | Some t, Some t' when t' <= t -> Ok ()
    | v, v' ->
        fail "width_monotone" "one extra wire hurt: W=%d %s, W=%d %s"
          inst.Gen.total_width (verdict v)
          (inst.Gen.total_width + 1) (verdict v')
  in
  (* relaxation_monotone *)
  let* () =
    let relaxed = Problem.with_constraints problem Problem.no_constraints in
    match (Exact.solve relaxed).Exact.solution with
    | None ->
        fail "relaxation_monotone" "unconstrained instance reported infeasible"
    | Some (_, t') -> (
        match exact_time with
        | None -> Ok ()
        | Some t ->
            if t' <= t then Ok ()
            else
              fail "relaxation_monotone"
                "dropping constraints raised T: %d -> %d" t t')
  in
  (* warm_equals_cold *)
  let* () =
    if Problem.total_width problem > ilp_width_cap then Ok ()
    else begin
      (* ilp_matches_exact already pinned the warm (incumbent-seeded)
         solve to the exact optimum; one cold solve closes the loop. *)
      let cold = Ilp.solve ~seed_incumbent:false ~presolve ~cuts problem in
      if not cold.Ilp.optimal then
        fail "warm_equals_cold" "cold ILP lost its optimality claim"
      else
        match exact_time, Option.map snd cold.Ilp.solution with
        | None, None -> Ok ()
        | Some t, Some t' when t = t' -> Ok ()
        | v, v' ->
            fail "warm_equals_cold"
              "incumbent seeding changes the answer: %s vs %s" (verdict v)
              (verdict v')
    end
  in
  (* presolve_equivalence *)
  let* () =
    if Problem.total_width problem > ilp_width_cap then Ok ()
    else if not (presolve || cuts) then
      (* ilp_matches_exact already ran the plain pipeline. *)
      Ok ()
    else begin
      (* The strengthening pipeline must change search effort only, never
         answers: re-solve with presolve and cuts both off and pin the
         verdict to the exact optimum again. *)
      let plain = Ilp.solve ~presolve:false ~cuts:false problem in
      if not plain.Ilp.optimal then
        fail "presolve_equivalence" "plain ILP lost its optimality claim"
      else
        match exact_time, Option.map snd plain.Ilp.solution with
        | None, None -> Ok ()
        | Some t, Some t' when t = t' -> Ok ()
        | v, v' ->
            fail "presolve_equivalence"
              "disabling presolve+cuts changes the answer: %s vs %s"
            (verdict v) (verdict v')
    end
  in
  (* race_matches_exact *)
  (* The sequential portfolio (no pool, no deadline) must certify the
     exact optimum and return a verified architecture. Width is capped
     like the other MILP properties — the portfolio includes the ILP
     engine. *)
  let* () =
    if Problem.total_width problem > ilp_width_cap then Ok ()
    else begin
      let race = Race.solve problem in
      if not race.Race.optimal then
        fail "race_matches_exact" "race returned without a certificate"
      else
        match exact_time, race.Race.solution with
        | None, None -> Ok ()
        | Some t, None ->
            fail "race_matches_exact" "race infeasible but exact found T=%d" t
        | None, Some (_, t') ->
            fail "race_matches_exact"
              "race found T=%d on an exact-infeasible instance" t'
        | Some t, Some (arch, t') ->
            if t' <> t then
              fail "race_matches_exact" "race T=%d but exact T=%d" t' t
            else (
              match Verify.check problem arch ~claimed_time:t' with
              | Ok () -> Ok ()
              | Error msg ->
                  fail "race_matches_exact" "race architecture rejected: %s"
                    msg)
    end
  in
  (* pack_bounds *)
  (* The rectangle-packing family against the partition optimum. The
     partition optimum bounds the packing family only when its own
     schedule, converted to a packing, is feasible under the envelope
     (partition solvers never see [p_max]) — that converted schedule
     also seeds the greedy portfolio, making "seeded greedy <= partition
     optimum" a real claim rather than a coincidence of the heuristics.
     The exact packer runs unseeded; its claims only apply when the
     search exhausted within the node budget (the certificate). *)
  let p_max_mw = inst.Gen.p_max in
  let pack_lb = Pack.lower_bound ?p_max_mw problem in
  let seed_archs =
    match exact with Some (arch, _) -> [ arch ] | None -> []
  in
  let partition_bound =
    match exact with
    | None -> None
    | Some (arch, t) -> (
        match
          Pack.validate ?p_max_mw problem
            (Rect_sched.of_architecture problem arch)
        with
        | Ok () -> Some t
        | Error _ -> None)
  in
  let greedy = Pack.greedy ?p_max_mw ~seed_archs problem in
  let* () =
    match Pack.validate ?p_max_mw problem greedy with
    | Ok () -> Ok ()
    | Error msg -> fail "pack_bounds" "greedy packing rejected: %s" msg
  in
  let* () =
    if greedy.Rect_sched.makespan < pack_lb then
      fail "pack_bounds" "greedy makespan %d beats the lower bound %d"
        greedy.Rect_sched.makespan pack_lb
    else Ok ()
  in
  let* () =
    match partition_bound with
    | Some t when greedy.Rect_sched.makespan > t ->
        fail "pack_bounds"
          "seeded greedy makespan %d exceeds the partition optimum %d"
          greedy.Rect_sched.makespan t
    | _ -> Ok ()
  in
  let* () =
    (* The schedule-emission path must respect the envelope too. *)
    match p_max_mw with
    | None -> Ok ()
    | Some p ->
        let budget = Pack.effective_budget problem ~p_max_mw:p in
        let profile =
          Profile.of_schedule problem (Pack.to_schedule greedy)
        in
        if Profile.respects ~p_max_mw:budget profile then Ok ()
        else
          fail "pack_bounds"
            "emitted schedule violates the %.3f mW envelope" budget
  in
  if Soc.num_cores inst.Gen.soc > pack_exact_core_cap then Ok ()
  else begin
    let r =
      Pack.exact ?p_max_mw ~node_budget:pack_exact_node_budget problem
    in
    if not r.Pack.optimal then Ok () (* budget blown: no claim *)
    else
      match r.Pack.packing with
      | None ->
          fail "pack_bounds" "unseeded exact packer certified no packing"
      | Some p ->
          let* () =
            match Pack.validate ?p_max_mw problem p with
            | Ok () -> Ok ()
            | Error msg ->
                fail "pack_bounds" "exact packing rejected: %s" msg
          in
          let t = p.Rect_sched.makespan in
          if t < pack_lb then
            fail "pack_bounds" "exact makespan %d beats the lower bound %d"
              t pack_lb
          else if t > greedy.Rect_sched.makespan then
            fail "pack_bounds" "exact makespan %d exceeds greedy %d" t
              greedy.Rect_sched.makespan
          else (
            match partition_bound with
            | Some pt when t > pt ->
                fail "pack_bounds"
                  "exact packing %d exceeds the partition optimum %d" t pt
            | _ -> Ok ())
  end
