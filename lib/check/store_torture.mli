(** Crash-and-corruption torture for {!Soctam_store.Store}.

    A torture case is a deterministic {e fault schedule}: a seeded
    sequence of store operations interleaved with injected damage —
    appends killed mid-write at a chosen byte, truncated segment
    tails, targeted bit flips inside a record's CRC-protected region,
    duplicate keys across segment rotations, compactions with a
    concurrent reader on a second handle, and hard reopens (the crash
    boundary). The model-based oracle tracks every {e acknowledged}
    append and asserts, after every read:

    - {b no frame-check escapes}: a served document is byte-equal to
      some acknowledged document for that key — damage either rolls a
      key back to an older acknowledged value or makes it a miss,
      never garbage;
    - {b no lost acks}: absent injected damage to its frames, a key
      reads back its {e newest} acknowledged value, across reopens,
      rotations and compactions (torn appends were never acknowledged
      and may vanish);
    - {b reader isolation}: a concurrent reader during compaction sees
      some acknowledged value or a miss, never a torn state.

    Schedules shrink by greedy op deletion and persist as replayable
    [.fault] corpus entries, mirroring the {!Corpus} [.soc] format. *)

(** Injectable store bugs ({!Soctam_store.Store.faults}), used to prove
    the oracle catches what it claims to catch. *)
type fault =
  | No_fault
  | Skip_crc  (** serve frames without CRC verification *)
  | Drop_writes  (** acknowledge appends that never hit disk *)
  | Stale_compact  (** compaction keeps the oldest record per key *)
  | Append_past_torn
      (** append past a crashed write's torn tail without repairing it,
          losing the acknowledged frames behind its claimed length *)

val fault_names : string list
val fault_name : fault -> string
val fault_of_string : string -> (fault, string) result

type op =
  | Append of { key : int; value : int }
  | Torn_append of { key : int; value : int; keep_bytes : int }
      (** write only the first [keep_bytes] bytes of the frame: an
          append killed mid-write, never acknowledged *)
  | Flip_bit of { key : int; bit : int }
      (** flip one bit inside the on-disk frame currently serving
          [key] (CRC-protected payload region) *)
  | Truncate_tail of { bytes : int }
      (** chop bytes off the end of the newest segment *)
  | Reopen  (** crash boundary: drop the handle, reopen and recover *)
  | Compact
  | Find of { key : int }  (** read + oracle check *)
  | Concurrent_read_compact of { key : int }
      (** a second handle reads [key] from another thread while this
          handle compacts *)

type schedule = { seed : int; fault : fault; ops : op list }

(** Deterministic schedule from a seed (own generator — identical
    across OCaml versions). *)
val schedule_of_seed : ?ops:int -> fault:fault -> int -> schedule

type failure = {
  op_index : int;  (** 0-based index of the violating op *)
  op : op;
  message : string;
}

(** Runs one schedule in a fresh throwaway directory (small segments to
    force rotation; [fsync] defaults to [false] — there is no real
    crash, so the reopen-survival checks hold either way and the run
    stays fast). Returns the first oracle violation, if any. *)
val run_schedule :
  ?fsync:bool -> fault:fault -> op list -> (unit, failure) result

(** Greedy op-deletion minimization: returns the smallest still-failing
    subsequence (re-running the schedule per candidate). *)
val shrink_schedule : schedule -> schedule

(** [.fault] corpus entries: replayable textual schedules, digest-named
    like the [.soc] corpus. *)
val schedule_to_string : ?note:string -> schedule -> string

val schedule_of_string : string -> (schedule, string) result
val save : dir:string -> ?note:string -> schedule -> string
val load_file : string -> (schedule, string) result

type report = {
  iteration : int;
  case_seed : int;  (** [seed + iteration]; replays this schedule *)
  schedule : schedule;
  failure : failure;
  shrunk : schedule option;
  corpus_path : string option;
}

type outcome = {
  executed : int;  (** schedules run, including any failing one *)
  failure : report option;
}

(** [run ~seed ~budget ()] tortures [budget] seeded schedules and stops
    at the first oracle violation — on the healthy store none is ever
    expected; with [fault] injected the oracle must object. *)
val run :
  ?log:(string -> unit) ->
  ?fault:fault ->
  ?shrink:bool ->
  ?corpus_dir:string ->
  ?ops_per_case:int ->
  seed:int ->
  budget:int ->
  unit ->
  outcome

(** Re-runs a corpus schedule: [Ok ()] means the once-failing schedule
    now passes (on the healthy store, i.e. the recorded fault is
    ignored and [No_fault] is used unless [use_fault] is set). *)
val replay : ?use_fault:bool -> schedule -> (unit, failure) result
