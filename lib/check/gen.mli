(** Structured random instance generation — the single definition of a
    "random SOC instance".

    Both randomized test layers ride on this module: the qcheck suites
    ([test/gen.ml] wraps {!spec_of_seed} in a [QCheck.arbitrary]) and
    the differential fuzzer ([tamopt fuzz] walks seeds directly). A
    {!spec} is the compact, reproducible description — everything is
    derived deterministically from integers, so a failure report that
    prints the spec {e is} the repro. An {!instance} is the
    materialized form the {!Oracle} checks and the {!Shrink} minimizer
    edits: once the shrinker starts dropping cores and truncating
    staircases the instance no longer corresponds to any seed, which is
    why the two representations are kept distinct. *)

(** A materialized instance: a concrete SOC plus the run parameters.
    Unlike a {!spec} it can describe SOCs that no seed generates —
    the {!Shrink} minimizer and the {!Corpus} files live here.
    (Declared before {!spec} so that the shared [num_buses] and
    [total_width] field names resolve to {!spec} in unannotated client
    code, exactly as they did before this type existed.) *)
type instance = {
  soc : Soctam_soc.Soc.t;
  num_buses : int;
  total_width : int;
  excl : (int * int) list;  (** Exclusion pairs (raw, in core-index range). *)
  co : (int * int) list;  (** Co-assignment pairs (raw). *)
  p_max : float option;
      (** Instantaneous power envelope in mW, for the pack-family
          oracle property; [None] leaves packing unconstrained. *)
}

(** A reproducible instance description. [seed] is the
    {!Soctam_soc.Benchmarks.random} SOC seed; constraint pairs are raw
    (unnormalized, possibly duplicated) — {!Soctam_core.Problem.make}
    normalizes them. *)
type spec = {
  seed : int;
  num_cores : int;
  num_buses : int;
  total_width : int;
  raw_excl : (int * int) list;
  raw_co : (int * int) list;
  p_max_pct : int option;
      (** Power envelope as a percentage between the hungriest single
          core (0) and the whole-SOC sum (100); materialized to mW by
          {!instance_of_spec}. Only [Some] under [~pack_bias:true]. *)
}

(** [spec_of_seed ~seed ()] derives a spec deterministically: equal
    seeds yield equal specs, on every run and every machine. Cores
    default to the \[2, 6\] range of the historical qcheck generator
    (brute-force cross-checks stay cheap); widen with [max_cores] for
    deeper fuzzing. Buses are drawn from \[1, 3\] and the width budget
    from \[buses, buses + 8\]. [~pack_bias:true] stresses the
    rectangle-packing family: up to 8 extra wires of width budget, up
    to 2 extra co-assignment pairs and an instantaneous power envelope
    ([p_max_pct] in \[10, 90\]); the unbiased draws are unchanged, so
    seed -> spec under the default is byte-identical to before the knob
    existed. Raises [Invalid_argument] when [min_cores < 1] or
    [max_cores < min_cores]. *)
val spec_of_seed :
  ?min_cores:int -> ?max_cores:int -> ?pack_bias:bool -> seed:int -> unit ->
  spec

(** One-line rendering, e.g. [{seed=17 n=4 nb=2 W=6 excl=[0,3] co=[]}]. *)
val spec_print : spec -> string

(** The spec's SOC ({!Soctam_soc.Benchmarks.random} under [spec.seed]). *)
val soc_of_spec : spec -> Soctam_soc.Soc.t

(** [problem_of_spec ?constrained spec] builds the problem instance;
    [~constrained:false] drops the constraint pairs (used by suites that
    need guaranteed-feasible instances). *)
val problem_of_spec : ?constrained:bool -> spec -> Soctam_core.Problem.t

val instance_of_spec : spec -> instance

(** Builds the {!Soctam_core.Problem.t}; raises [Invalid_argument] on an
    invalid instance (out-of-range pairs, width < buses). *)
val problem_of_instance : instance -> Soctam_core.Problem.t

(** One-line rendering with SOC name and sizes. *)
val instance_print : instance -> string
