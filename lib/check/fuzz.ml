type failure_report = {
  iteration : int;
  fuzz_seed : int;
  spec : Gen.spec;
  failure : Oracle.failure;
  shrunk : Shrink.result option;
  corpus_path : string option;
}

type outcome = {
  executed : int;
  failure : failure_report option;
}

let run ?(log = fun _ -> ()) ?(fault = Oracle.No_fault) ?(shrink = false)
    ?corpus_dir ?min_cores ?max_cores ?pack_bias ?(presolve = true)
    ?(cuts = true) ~seed ~budget () =
  if budget < 0 then invalid_arg "Fuzz.run: budget < 0";
  let check = Oracle.check ~fault ~presolve ~cuts in
  let rec loop i =
    if i >= budget then begin
      log (Printf.sprintf "fuzz: %d instances clean (seed %d)" budget seed);
      { executed = budget; failure = None }
    end
    else begin
      if i > 0 && i mod 50 = 0 then
        log (Printf.sprintf "fuzz: %d/%d clean" i budget);
      let fuzz_seed = seed + i in
      let spec =
        Gen.spec_of_seed ?min_cores ?max_cores ?pack_bias ~seed:fuzz_seed ()
      in
      let instance = Gen.instance_of_spec spec in
      match check instance with
      | Ok () -> loop (i + 1)
      | Error failure ->
          log
            (Printf.sprintf
               "FAILURE at instance %d (fuzz seed %d): property %s\n\
               \  spec %s\n\
               \  %s"
               i fuzz_seed failure.Oracle.property (Gen.spec_print spec)
               failure.Oracle.detail);
          let shrunk =
            if not shrink then None
            else begin
              let r =
                Shrink.shrink ~check ~property:failure.Oracle.property
                  instance
              in
              log
                (Printf.sprintf
                   "  shrunk to %s in %d steps (%d oracle calls)"
                   (Gen.instance_print r.Shrink.instance) r.Shrink.steps
                   r.Shrink.oracle_calls);
              Some r
            end
          in
          let minimal =
            match shrunk with
            | Some r -> r.Shrink.instance
            | None -> instance
          in
          let corpus_path =
            match corpus_dir with
            | None -> None
            | Some dir ->
                let note =
                  Printf.sprintf
                    "found by tamopt fuzz --seed %d (iteration %d, \
                     instance seed %d)%s\ndetail: %s"
                    seed i fuzz_seed
                    (match fault with
                    | Oracle.No_fault -> ""
                    | f ->
                        Printf.sprintf " with injected fault %s"
                          (Oracle.fault_name f))
                    failure.Oracle.detail
                in
                let path =
                  Corpus.save ~dir
                    { Corpus.property = failure.Oracle.property;
                      instance = minimal;
                      note = Some note }
                in
                log (Printf.sprintf "  repro written: %s" path);
                Some path
          in
          { executed = i + 1;
            failure =
              Some { iteration = i; fuzz_seed; spec; failure; shrunk;
                     corpus_path } }
    end
  in
  loop 0

let replay (entry : Corpus.entry) = Oracle.check entry.Corpus.instance
