(** The persisted regression corpus.

    Every bug the fuzzer finds is distilled into one self-contained
    text file: a header naming the failing property and the instance
    parameters, followed by the SOC in the standard
    {!Soctam_soc.Soc_file} format. Files live in [test/corpus/] and are
    replayed by [dune runtest] forever after — the one-off differential
    trick that caught the PR 2 simplex bug, promoted to a permanent
    test suite that grows with every find.

    {v
    # found by tamopt fuzz --seed 1 (iteration 37)
    property ilp_matches_exact
    buses 2
    width 3
    excl 0 1
    soc shrunk
    core rnd7_0 inputs=12 outputs=9 patterns=20 power=...
    ...
    v}

    A replay asserts the property {e passes}: corpus entries are
    minimal repros of bugs that have since been fixed, so a failing
    replay means the bug came back. *)

type entry = {
  property : string;  (** The oracle property this instance once broke. *)
  instance : Gen.instance;
  note : string option;
      (** Free-form provenance (seed, fault, date); stored as [#]
          comment lines, ignored on replay and by {!filename}. *)
}

(** Renders an entry; inverse of {!of_string}. Raises
    [Invalid_argument] when [property] contains whitespace or
    newlines. *)
val to_string : entry -> string

(** Parses an entry; errors are human-readable ("line 3: ..."). Header
    directives may come in any order; everything from the first
    [soc] line onward is parsed by {!Soctam_soc.Soc_file}. *)
val of_string : string -> (entry, string) result

(** Stable basename, [<property>-<digest8>.soc], where the digest
    covers the property and instance but not the note — re-finding the
    same minimal repro collapses onto one file. *)
val filename : entry -> string

(** [save ~dir entry] writes [entry] under {!filename} in [dir]
    (created if missing) and returns the path. *)
val save : dir:string -> entry -> string

val load_file : string -> (entry, string) result

(** [load_dir dir] loads every [*.soc] entry, sorted by basename.
    A missing directory is an empty corpus; an unparseable entry is an
    [Error] naming the file. *)
val load_dir : string -> ((string * entry) list, string) result
