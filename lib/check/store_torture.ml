module Json = Soctam_obs.Json
module Store = Soctam_store.Store

type fault =
  | No_fault
  | Skip_crc
  | Drop_writes
  | Stale_compact
  | Append_past_torn

let fault_names =
  [ "none";
    "store-skip-crc";
    "store-drop-writes";
    "store-stale-compact";
    "store-append-past-torn" ]

let fault_name = function
  | No_fault -> "none"
  | Skip_crc -> "store-skip-crc"
  | Drop_writes -> "store-drop-writes"
  | Stale_compact -> "store-stale-compact"
  | Append_past_torn -> "store-append-past-torn"

let fault_of_string = function
  | "none" -> Ok No_fault
  | "store-skip-crc" -> Ok Skip_crc
  | "store-drop-writes" -> Ok Drop_writes
  | "store-stale-compact" -> Ok Stale_compact
  | "store-append-past-torn" -> Ok Append_past_torn
  | s ->
      Error
        (Printf.sprintf "unknown store fault %S (expected one of: %s)" s
           (String.concat ", " fault_names))

let store_faults = function
  | No_fault -> Store.no_faults
  | Skip_crc -> { Store.no_faults with Store.skip_crc = true }
  | Drop_writes -> { Store.no_faults with Store.drop_writes = true }
  | Stale_compact -> { Store.no_faults with Store.compact_keeps_first = true }
  | Append_past_torn -> { Store.no_faults with Store.append_past_torn = true }

type op =
  | Append of { key : int; value : int }
  | Torn_append of { key : int; value : int; keep_bytes : int }
  | Flip_bit of { key : int; bit : int }
  | Truncate_tail of { bytes : int }
  | Reopen
  | Compact
  | Find of { key : int }
  | Concurrent_read_compact of { key : int }

type schedule = { seed : int; fault : fault; ops : op list }

(* ---- deterministic generation (own LCG: stable across OCaml
   versions, unlike [Random]) ---- *)

(* 48-bit LCG (the java.util.Random constants): fits OCaml's 63-bit
   [int] on every platform. *)
let lcg_next st =
  st := ((!st * 25214903917) + 11) land 0xFFFFFFFFFFFF;
  !st lsr 17

let rand st n = if n <= 0 then 0 else lcg_next st mod n

let num_keys = 4

let schedule_of_seed ?(ops = 28) ~fault seed =
  let st = ref (seed lxor 0x5DEECE66D) in
  ignore (lcg_next st);
  let value = ref 0 in
  let body =
    List.init ops (fun _ ->
        let key = rand st num_keys in
        match rand st 100 with
        | r when r < 35 ->
            incr value;
            Append { key; value = !value }
        | r when r < 55 -> Find { key }
        | r when r < 63 ->
            incr value;
            (* Torn frames carry a ~2 KiB document, so any keep in
               [0, 50) is genuinely torn — and a keep past the 12-byte
               header leaves a fully-written length field claiming ~2 KiB
               the segment does not hold. *)
            Torn_append { key; value = !value; keep_bytes = rand st 50 }
        | r when r < 72 -> Flip_bit { key; bit = rand st 2048 }
        | r when r < 77 -> Truncate_tail { bytes = 1 + rand st 48 }
        | r when r < 86 -> Reopen
        | r when r < 93 -> Compact
        | _ -> Concurrent_read_compact { key })
  in
  (* Epilogue: cross the crash boundary once more and read every key,
     so durability violations surface even in read-light schedules. *)
  let epilogue = Reopen :: List.init num_keys (fun key -> Find { key }) in
  { seed; fault; ops = body @ epilogue }

(* ---- schedule execution against a model oracle ---- *)

type failure = { op_index : int; op : op; message : string }

let key_str k = Printf.sprintf "k%02d" k

(* A long CRC-protected filler gives {!Flip_bit} a region where a
   single-bit flip keeps the JSON parseable but changes the document —
   exactly the damage a [skip_crc] store serves and a healthy store
   must reject. *)
let doc_of_value v =
  Json.Obj
    [ ("fill", Json.Str (String.make 96 'x')); ("value", Json.int v) ]

(* Torn appends use a much larger document than ordinary appends. The
   partially-written header then claims far more bytes than any run of
   subsequent ~140-byte frames supplies, so a store that appends past
   the torn tail without repairing it keeps reporting the region as
   torn at recovery and silently drops every acknowledged frame behind
   it — the failure mode uniform payload sizes can never surface,
   because any later append flips the region to corrupt instead. *)
let torn_doc_of_value v =
  Json.Obj
    [ ("fill", Json.Str (String.make 2048 'x')); ("value", Json.int v) ]

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter
        (fun name -> rm_rf (Filename.concat path name))
        (Sys.readdir path);
      Unix.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "soctam-torture-%d-%d" (Unix.getpid ()) !dir_counter)
  in
  (try rm_rf d with _ -> ());
  Unix.mkdir d 0o755;
  d

let segment_bytes = 512 (* tiny: a handful of appends forces rotation *)

let doc_string = function
  | None -> "<none>"
  | Some d -> Json.to_string d

(* Flips one bit inside the filler region of the frame at
   [(path, off, len)]. Returns [false] when the region cannot be found
   (record only in memory, or damage already mangled the payload). *)
let flip_filler_bit ~path ~off ~len ~bit =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let size = (Unix.fstat fd).Unix.st_size in
      if off + len > size then false
      else begin
        let buf = Bytes.create len in
        ignore (Unix.lseek fd off Unix.SEEK_SET);
        let rec fill got =
          if got < len then
            let n = Unix.read fd buf got (len - got) in
            if n = 0 then got else fill (got + n)
          else got
        in
        if fill 0 < len then false
        else
          let frame = Bytes.to_string buf in
          let marker = "\"fill\":\"" in
          match
            (* find the filler string inside the payload *)
            let rec search i =
              if i + String.length marker > len then None
              else if String.sub frame i (String.length marker) = marker
              then Some (i + String.length marker)
              else search (i + 1)
            in
            search 0
          with
          | None -> false
          | Some fill_start ->
              let fill_len =
                let rec span i n =
                  if i < len && frame.[i] = 'x' then span (i + 1) (n + 1)
                  else n
                in
                span fill_start 0
              in
              if fill_len = 0 then false
              else begin
                (* bits 0..2 keep the byte printable ASCII, so the
                   flipped JSON still parses *)
                let byte_off = fill_start + (bit / 3 mod fill_len) in
                let mask = 1 lsl (bit mod 3) in
                let b = Char.code frame.[byte_off] lxor mask in
                ignore (Unix.lseek fd (off + byte_off) Unix.SEEK_SET);
                ignore
                  (Unix.write fd (Bytes.make 1 (Char.chr b)) 0 1);
                true
              end
      end)

let run_schedule ?(fsync = false) ~fault ops =
  let faults = store_faults fault in
  let dir = fresh_dir () in
  let store = ref (Store.open_store ~segment_bytes ~fsync ~faults dir) in
  (* newest acknowledged doc per key, and every doc ever acknowledged:
     undamaged keys must serve the newest, damaged keys at worst roll
     back within the acknowledged history or go missing. *)
  let model : (int, Json.t) Hashtbl.t = Hashtbl.create 8 in
  let history : (int, Json.t list) Hashtbl.t = Hashtbl.create 8 in
  let damaged : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let acked key doc =
    Hashtbl.replace model key doc;
    Hashtbl.replace history key
      (doc :: Option.value ~default:[] (Hashtbl.find_opt history key))
  in
  let in_history key doc =
    List.exists
      (fun d -> d = doc)
      (Option.value ~default:[] (Hashtbl.find_opt history key))
  in
  let check_read ~strict key served =
    if strict && not (Hashtbl.mem damaged key) then
      match (Hashtbl.find_opt model key, served) with
      | None, None -> Ok ()
      | Some want, Some got when want = got -> Ok ()
      | want, got ->
          Error
            (Printf.sprintf
               "undamaged key %s served %s, newest acknowledged is %s"
               (key_str key) (doc_string got)
               (doc_string (Option.map Fun.id want)))
    else
      match served with
      | None -> Ok ()
      | Some got when in_history key got -> Ok ()
      | Some got ->
          Error
            (Printf.sprintf
               "key %s served %s, which was never acknowledged"
               (key_str key) (doc_string (Some got)))
  in
  let exec = function
    | Append { key; value } ->
        let doc = doc_of_value value in
        Store.add !store (key_str key) doc;
        acked key doc;
        Ok ()
    | Torn_append { key; value; keep_bytes } ->
        (* killed mid-write: bytes may land, the ack never happens *)
        Store.append_torn !store ~key:(key_str key)
          ~doc:(torn_doc_of_value value) ~keep_bytes;
        Ok ()
    | Flip_bit { key; bit } ->
        (match Store.locate !store (key_str key) with
        | None -> ()
        | Some (path, off, len) ->
            if flip_filler_bit ~path ~off ~len ~bit then
              Hashtbl.replace damaged key ());
        Ok ()
    | Truncate_tail { bytes } -> (
        match List.rev (Store.segment_paths !store) with
        | [] -> Ok ()
        | last :: _ ->
            let size = (Unix.stat last).Unix.st_size in
            let new_size = max 0 (size - bytes) in
            Hashtbl.iter
              (fun key _ ->
                match Store.locate !store (key_str key) with
                | Some (path, off, len)
                  when path = last && off + len > new_size ->
                    Hashtbl.replace damaged key ()
                | _ -> ())
              model;
            Unix.truncate last new_size;
            Ok ())
    | Reopen ->
        Store.close !store;
        store := Store.open_store ~segment_bytes ~fsync ~faults dir;
        Ok ()
    | Compact ->
        Store.compact !store;
        Ok ()
    | Find { key } ->
        check_read ~strict:true key (Store.find !store (key_str key))
    | Concurrent_read_compact { key } ->
        let reader = Store.open_store ~segment_bytes ~fsync ~faults dir in
        let served = ref None in
        let th =
          Thread.create
            (fun () -> served := Some (Store.find reader (key_str key)))
            ()
        in
        Store.compact !store;
        Thread.join th;
        Store.close reader;
        (* The reader raced the compaction: it may serve an older
           acknowledged value, never an unacknowledged one. *)
        check_read ~strict:false key
          (Option.join !served)
  in
  Fun.protect
    ~finally:(fun () ->
      (try Store.close !store with _ -> ());
      try rm_rf dir with _ -> ())
    (fun () ->
      let rec go i = function
        | [] -> Ok ()
        | op :: rest -> (
            match exec op with
            | Ok () -> go (i + 1) rest
            | Error message -> Error { op_index = i; op; message }
            | exception e ->
                Error
                  { op_index = i;
                    op;
                    message = "exception: " ^ Printexc.to_string e })
      in
      go 0 ops)

(* ---- shrinking: greedy op deletion to a fixpoint ---- *)

let shrink_schedule sched =
  let fails ops = Result.is_error (run_schedule ~fault:sched.fault ops) in
  let rec pass ops =
    let arr = Array.of_list ops in
    let n = Array.length arr in
    let removed = ref false in
    let keep = Array.make n true in
    for i = 0 to n - 1 do
      if keep.(i) then begin
        keep.(i) <- false;
        let candidate =
          List.filteri (fun j _ -> keep.(j)) (Array.to_list arr)
        in
        if fails candidate then removed := true else keep.(i) <- true
      end
    done;
    let ops' = List.filteri (fun j _ -> keep.(j)) (Array.to_list arr) in
    if !removed then pass ops' else ops'
  in
  if fails sched.ops then { sched with ops = pass sched.ops } else sched

(* ---- textual corpus (.fault files) ---- *)

let op_to_string = function
  | Append { key; value } -> Printf.sprintf "op append %d %d" key value
  | Torn_append { key; value; keep_bytes } ->
      Printf.sprintf "op torn-append %d %d %d" key value keep_bytes
  | Flip_bit { key; bit } -> Printf.sprintf "op flip-bit %d %d" key bit
  | Truncate_tail { bytes } -> Printf.sprintf "op truncate-tail %d" bytes
  | Reopen -> "op reopen"
  | Compact -> "op compact"
  | Find { key } -> Printf.sprintf "op find %d" key
  | Concurrent_read_compact { key } ->
      Printf.sprintf "op concurrent-read-compact %d" key

let body_of_schedule s =
  let b = Buffer.create 512 in
  Buffer.add_string b "store-torture v1\n";
  Buffer.add_string b (Printf.sprintf "seed %d\n" s.seed);
  Buffer.add_string b (Printf.sprintf "fault %s\n" (fault_name s.fault));
  List.iter
    (fun op ->
      Buffer.add_string b (op_to_string op);
      Buffer.add_char b '\n')
    s.ops;
  Buffer.contents b

let schedule_to_string ?note s =
  let header =
    match note with
    | None -> ""
    | Some note ->
        String.concat ""
          (List.map
             (fun line -> "# " ^ line ^ "\n")
             (String.split_on_char '\n' note))
  in
  header ^ body_of_schedule s

let schedule_of_string text =
  let ( let* ) = Result.bind in
  let fail line fmt =
    Printf.ksprintf
      (fun msg -> Error (Printf.sprintf "line %d: %s" line msg))
      fmt
  in
  let int_word line w =
    match int_of_string_opt w with
    | Some n -> Ok n
    | None -> fail line "%S is not an integer" w
  in
  let lines = String.split_on_char '\n' text in
  let rec go lineno ~seen_magic ~seed ~fault ops = function
    | [] ->
        if not seen_magic then Error "missing \"store-torture v1\" header"
        else
          Ok
            { seed = Option.value ~default:0 seed;
              fault = Option.value ~default:No_fault fault;
              ops = List.rev ops }
    | line :: rest -> (
        let words =
          String.split_on_char ' ' line |> List.filter (fun w -> w <> "")
        in
        match words with
        | [] | "#" :: _ ->
            go (lineno + 1) ~seen_magic ~seed ~fault ops rest
        | [ "store-torture"; "v1" ] ->
            go (lineno + 1) ~seen_magic:true ~seed ~fault ops rest
        | [ "seed"; s ] ->
            let* s = int_word lineno s in
            go (lineno + 1) ~seen_magic ~seed:(Some s) ~fault ops rest
        | [ "fault"; f ] ->
            let* f = fault_of_string f in
            go (lineno + 1) ~seen_magic ~seed ~fault:(Some f) ops rest
        | "op" :: op_words ->
            let* op =
              match op_words with
              | [ "append"; k; v ] ->
                  let* key = int_word lineno k in
                  let* value = int_word lineno v in
                  Ok (Append { key; value })
              | [ "torn-append"; k; v; kb ] ->
                  let* key = int_word lineno k in
                  let* value = int_word lineno v in
                  let* keep_bytes = int_word lineno kb in
                  Ok (Torn_append { key; value; keep_bytes })
              | [ "flip-bit"; k; b ] ->
                  let* key = int_word lineno k in
                  let* bit = int_word lineno b in
                  Ok (Flip_bit { key; bit })
              | [ "truncate-tail"; b ] ->
                  let* bytes = int_word lineno b in
                  Ok (Truncate_tail { bytes })
              | [ "reopen" ] -> Ok Reopen
              | [ "compact" ] -> Ok Compact
              | [ "find"; k ] ->
                  let* key = int_word lineno k in
                  Ok (Find { key })
              | [ "concurrent-read-compact"; k ] ->
                  let* key = int_word lineno k in
                  Ok (Concurrent_read_compact { key })
              | w :: _ -> fail lineno "unknown op %S" w
              | [] -> fail lineno "empty op"
            in
            go (lineno + 1) ~seen_magic ~seed ~fault (op :: ops) rest
        | w :: _ -> fail lineno "unknown directive %S" w)
  in
  go 1 ~seen_magic:false ~seed:None ~fault:None [] lines

let rec mkdir_p path =
  if path <> "" && path <> "/" && not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let save ~dir ?note s =
  mkdir_p dir;
  let body = body_of_schedule s in
  let digest =
    String.sub (Digest.to_hex (Digest.string body)) 0 8
  in
  let property =
    match s.fault with No_fault -> "store-clean" | f -> fault_name f
  in
  let path =
    Filename.concat dir (Printf.sprintf "%s-%s.fault" property digest)
  in
  let oc = open_out path in
  output_string oc (schedule_to_string ?note s);
  close_out oc;
  path

let load_file path =
  let ic = open_in_bin path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  schedule_of_string text

(* ---- the driver ---- *)

type report = {
  iteration : int;
  case_seed : int;
  schedule : schedule;
  failure : failure;
  shrunk : schedule option;
  corpus_path : string option;
}

type outcome = { executed : int; failure : report option }

let run ?(log = fun _ -> ()) ?(fault = No_fault) ?(shrink = false)
    ?corpus_dir ?ops_per_case ~seed ~budget () =
  let rec go i =
    if i >= budget then { executed = budget; failure = None }
    else begin
      let case_seed = seed + i in
      let schedule = schedule_of_seed ?ops:ops_per_case ~fault case_seed in
      if i mod 50 = 0 then
        log (Printf.sprintf "store torture %d/%d (seed %d)" i budget
               case_seed);
      match run_schedule ~fault schedule.ops with
      | Ok () -> go (i + 1)
      | Error failure ->
          log
            (Printf.sprintf "seed %d failed at op %d (%s): %s" case_seed
               failure.op_index
               (op_to_string failure.op)
               failure.message);
          let shrunk =
            if shrink then begin
              let s = shrink_schedule schedule in
              log
                (Printf.sprintf "shrunk %d ops -> %d ops"
                   (List.length schedule.ops)
                   (List.length s.ops));
              Some s
            end
            else None
          in
          let corpus_path =
            Option.map
              (fun dir ->
                let to_save =
                  Option.value ~default:schedule shrunk
                in
                let note =
                  Printf.sprintf
                    "store torture failure: seed %d, op %d\n%s" case_seed
                    failure.op_index failure.message
                in
                let path = save ~dir ~note to_save in
                log ("saved corpus entry " ^ path);
                path)
              corpus_dir
          in
          { executed = i + 1;
            failure =
              Some
                { iteration = i;
                  case_seed;
                  schedule;
                  failure;
                  shrunk;
                  corpus_path } }
    end
  in
  go 0

let replay ?(use_fault = false) s =
  let fault = if use_fault then s.fault else No_fault in
  run_schedule ~fault s.ops
