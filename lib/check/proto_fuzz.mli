(** Adversarial NDJSON protocol fuzzing for the [tamoptd] service.

    Throws malformed and hostile request frames — raw garbage,
    truncated JSON, non-object values, unknown ops, wrongly-typed and
    missing fields, bogus SOC specs, deep nesting, oversized strings,
    duplicate keys — at a request handler and asserts the daemon
    contract: {b every} frame gets exactly one well-formed JSON object
    reply with an [ok] boolean; [ok:false] replies carry a machine
    error code from the published set; frames that are not a valid
    request are answered, never crash the handler; [id]s are echoed;
    and the service still answers [ping]/[stats] after the storm.

    The handler is abstract ([string -> string]) so tests drive
    {!Soctam_service.Service.handle_line} in-process and [tamopt fuzz
    --proto] does the same without a socket. *)

(** The machine error codes a conforming reply may carry. *)
val known_error_codes : string list

(** [run ~handle ~seed ~budget ()] sends [budget] deterministic
    adversarial frames and validates every reply. [Ok ()] when the
    contract held throughout; [Error msg] pinpoints the first
    violation, quoting the offending frame and reply. A handler that
    raises is a violation, not an exception. *)
val run :
  ?log:(string -> unit) ->
  handle:(string -> string) ->
  seed:int ->
  budget:int ->
  unit ->
  (unit, string) result
