(** Adversarial NDJSON protocol fuzzing for the [tamoptd] service.

    Throws malformed and hostile request frames — raw garbage,
    truncated JSON, non-object values, unknown ops, wrongly-typed and
    missing fields, bogus SOC specs, deep nesting, oversized strings,
    duplicate keys, malformed / oversized / log-injecting trace ids,
    inline SOC names full of newlines and quotes — at a request handler
    and asserts the daemon contract: {b every} frame gets exactly one
    well-formed JSON object reply with an [ok] boolean; [ok:false]
    replies carry a machine error code from the published set; frames
    that are not a valid request are answered, never crash the handler;
    [id]s and legal [trace_id]s are echoed byte-identically; and the
    service still answers [ping]/[stats] after the storm.

    The handler is abstract ([string -> string]) so tests drive
    {!Soctam_service.Service.handle_line} in-process and [tamopt fuzz
    --proto] does the same without a socket. *)

(** The machine error codes a conforming reply may carry. *)
val known_error_codes : string list

(** [run ~handle ~seed ~budget ()] sends [budget] deterministic
    adversarial frames and validates every reply. [Ok ()] when the
    contract held throughout; [Error msg] pinpoints the first
    violation, quoting the offending frame and reply. A handler that
    raises is a violation, not an exception. *)
val run :
  ?log:(string -> unit) ->
  handle:(string -> string) ->
  seed:int ->
  budget:int ->
  unit ->
  (unit, string) result

(** [check_log_lines lines] asserts the structured-log contract over
    lines captured (via an [Obs.Log.Fn] sink) while the storm ran:
    each line is exactly one parseable JSON object carrying the core
    event schema ([trace_id]/[op]/[verdict] strings, [ts]/
    [duration_ms] numbers) and contains no raw newline — the
    one-event-per-line property hostile trace ids and SOC names try to
    break. *)
val check_log_lines : string list -> (unit, string) result
