(** The differential fuzzing driver.

    Walks a seed sequence, materializes one instance per seed
    ({!Gen.spec_of_seed}, so [--seed S --budget N] is exactly
    reproducible), runs the {!Oracle} on each and stops at the first
    failure — optionally {!Shrink}ing it and persisting a
    {!Corpus} repro. Everything the caller needs to reproduce the find
    is in the {!failure_report}: the base seed, the per-instance seed,
    the spec and the minimized instance. *)

type failure_report = {
  iteration : int;  (** 0-based index into the budget. *)
  fuzz_seed : int;  (** [seed + iteration]; replays this instance. *)
  spec : Gen.spec;
  failure : Oracle.failure;
  shrunk : Shrink.result option;  (** Present when shrinking was on. *)
  corpus_path : string option;  (** Present when a corpus dir was given. *)
}

type outcome = {
  executed : int;  (** Instances checked (including the failing one). *)
  failure : failure_report option;  (** [None]: the whole budget ran clean. *)
}

(** [run ~seed ~budget ()] fuzzes [budget] instances derived from
    [seed], [seed+1], ... Progress and failure details go through
    [log] (default: silent). [fault] injects an artificial solver bug
    (harness self-test); [shrink] (default [false]) minimizes a
    failure before reporting; [corpus_dir] persists the (possibly
    shrunk) repro. [min_cores]/[max_cores] bound the generated SOCs,
    and [pack_bias] stresses the rectangle-packing family with wider
    budgets, extra co-pairs and power envelopes
    (defaults as {!Gen.spec_of_seed}). [presolve]/[cuts] (default
    [true]) are forwarded to {!Oracle.check}: a batch with them off
    fuzzes the unstrengthened MILP pipeline. *)
val run :
  ?log:(string -> unit) ->
  ?fault:Oracle.fault ->
  ?shrink:bool ->
  ?corpus_dir:string ->
  ?min_cores:int ->
  ?max_cores:int ->
  ?pack_bias:bool ->
  ?presolve:bool ->
  ?cuts:bool ->
  seed:int ->
  budget:int ->
  unit ->
  outcome

(** [replay entry] re-checks a corpus entry against the full oracle
    (no fault): [Ok ()] means the once-failing instance now passes. *)
val replay : Corpus.entry -> (unit, Oracle.failure) result
