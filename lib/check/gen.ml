module Problem = Soctam_core.Problem
module Benchmarks = Soctam_soc.Benchmarks
module Soc = Soctam_soc.Soc

(* [instance] is declared before [spec] on purpose: [spec] reuses the
   [num_buses]/[total_width] field names, and declaring it last keeps
   unannotated [spec.Gen.num_buses] accesses in the qcheck suites
   resolving to [spec], as they did before [instance] existed. *)
type instance = {
  soc : Soc.t;
  num_buses : int;
  total_width : int;
  excl : (int * int) list;
  co : (int * int) list;
  p_max : float option;
}

type spec = {
  seed : int;
  num_cores : int;
  num_buses : int;
  total_width : int;
  raw_excl : (int * int) list;
  raw_co : (int * int) list;
  p_max_pct : int option;
}

(* All structure flows from one salted [Random.State] stream, with
   explicit recursion (never [List.init]) so the draw order — and hence
   the spec — is pinned down exactly, independent of stdlib evaluation
   order. *)
let spec_of_seed ?(min_cores = 2) ?(max_cores = 6) ?(pack_bias = false)
    ~seed () =
  if min_cores < 1 then invalid_arg "Gen.spec_of_seed: min_cores < 1";
  if max_cores < min_cores then
    invalid_arg "Gen.spec_of_seed: max_cores < min_cores";
  let st = Random.State.make [| seed; 0xf0a2 |] in
  let int_in lo hi = lo + Random.State.int st (hi - lo + 1) in
  let soc_seed = Random.State.int st 10_001 in
  let num_cores = int_in min_cores max_cores in
  let num_buses = int_in 1 3 in
  let total_width = num_buses + int_in 0 8 in
  let rec draw_pairs n acc =
    if n = 0 then List.rev acc
    else
      let a = Random.State.int st num_cores in
      let b = Random.State.int st num_cores in
      draw_pairs (n - 1) ((a, b) :: acc)
  in
  let clean = List.filter (fun (a, b) -> a <> b) in
  let raw_excl = clean (draw_pairs (int_in 0 3) []) in
  let raw_co = clean (draw_pairs (int_in 0 2) []) in
  (* The biased draws come last so the unbiased prefix — and hence every
     historical seed -> spec mapping — is untouched. *)
  let total_width, raw_co, p_max_pct =
    if not pack_bias then (total_width, raw_co, None)
    else
      let total_width = total_width + int_in 0 8 in
      let raw_co = raw_co @ clean (draw_pairs (int_in 0 2) []) in
      (total_width, raw_co, Some (int_in 10 90))
  in
  { seed = soc_seed; num_cores; num_buses; total_width; raw_excl; raw_co;
    p_max_pct }

let pairs_print pairs =
  String.concat ";"
    (List.map (fun (a, b) -> Printf.sprintf "%d,%d" a b) pairs)

let spec_print spec =
  Printf.sprintf "{seed=%d n=%d nb=%d W=%d excl=[%s] co=[%s]%s}" spec.seed
    spec.num_cores spec.num_buses spec.total_width
    (pairs_print spec.raw_excl) (pairs_print spec.raw_co)
    (match spec.p_max_pct with
    | None -> ""
    | Some pct -> Printf.sprintf " pmax=%d%%" pct)

let soc_of_spec spec =
  Benchmarks.random ~seed:spec.seed ~num_cores:spec.num_cores ()

(* [pct] interpolates between the tightest satisfiable envelope (the
   hungriest single core — anything lower forbids that core outright)
   and the never-binding one (every core at once). *)
let p_max_of_pct soc pct =
  let max_p = ref 0.0 and sum_p = ref 0.0 in
  for i = 0 to Soc.num_cores soc - 1 do
    let p = (Soc.core soc i).Soctam_soc.Core_def.power_mw in
    max_p := Float.max !max_p p;
    sum_p := !sum_p +. p
  done;
  !max_p +. (float_of_int pct /. 100.0 *. (!sum_p -. !max_p))

let problem_of_spec ?(constrained = true) spec =
  let constraints =
    if constrained then
      { Problem.exclusion_pairs = spec.raw_excl; co_pairs = spec.raw_co }
    else Problem.no_constraints
  in
  Problem.make (soc_of_spec spec) ~constraints ~num_buses:spec.num_buses
    ~total_width:spec.total_width

let instance_of_spec spec =
  let soc = soc_of_spec spec in
  { soc;
    num_buses = spec.num_buses;
    total_width = spec.total_width;
    excl = spec.raw_excl;
    co = spec.raw_co;
    p_max = Option.map (p_max_of_pct soc) spec.p_max_pct }

let problem_of_instance inst =
  Problem.make inst.soc
    ~constraints:{ Problem.exclusion_pairs = inst.excl; co_pairs = inst.co }
    ~num_buses:inst.num_buses ~total_width:inst.total_width

let instance_print inst =
  Printf.sprintf "{soc=%s n=%d nb=%d W=%d excl=[%s] co=[%s]%s}"
    (Soc.name inst.soc) (Soc.num_cores inst.soc) inst.num_buses
    inst.total_width (pairs_print inst.excl) (pairs_print inst.co)
    (match inst.p_max with
    | None -> ""
    | Some p -> Printf.sprintf " pmax=%.3f" p)
