module Problem = Soctam_core.Problem
module Benchmarks = Soctam_soc.Benchmarks
module Soc = Soctam_soc.Soc

(* [instance] is declared before [spec] on purpose: [spec] reuses the
   [num_buses]/[total_width] field names, and declaring it last keeps
   unannotated [spec.Gen.num_buses] accesses in the qcheck suites
   resolving to [spec], as they did before [instance] existed. *)
type instance = {
  soc : Soc.t;
  num_buses : int;
  total_width : int;
  excl : (int * int) list;
  co : (int * int) list;
}

type spec = {
  seed : int;
  num_cores : int;
  num_buses : int;
  total_width : int;
  raw_excl : (int * int) list;
  raw_co : (int * int) list;
}

(* All structure flows from one salted [Random.State] stream, with
   explicit recursion (never [List.init]) so the draw order — and hence
   the spec — is pinned down exactly, independent of stdlib evaluation
   order. *)
let spec_of_seed ?(min_cores = 2) ?(max_cores = 6) ~seed () =
  if min_cores < 1 then invalid_arg "Gen.spec_of_seed: min_cores < 1";
  if max_cores < min_cores then
    invalid_arg "Gen.spec_of_seed: max_cores < min_cores";
  let st = Random.State.make [| seed; 0xf0a2 |] in
  let int_in lo hi = lo + Random.State.int st (hi - lo + 1) in
  let soc_seed = Random.State.int st 10_001 in
  let num_cores = int_in min_cores max_cores in
  let num_buses = int_in 1 3 in
  let total_width = num_buses + int_in 0 8 in
  let rec draw_pairs n acc =
    if n = 0 then List.rev acc
    else
      let a = Random.State.int st num_cores in
      let b = Random.State.int st num_cores in
      draw_pairs (n - 1) ((a, b) :: acc)
  in
  let clean = List.filter (fun (a, b) -> a <> b) in
  let raw_excl = clean (draw_pairs (int_in 0 3) []) in
  let raw_co = clean (draw_pairs (int_in 0 2) []) in
  { seed = soc_seed; num_cores; num_buses; total_width; raw_excl; raw_co }

let pairs_print pairs =
  String.concat ";"
    (List.map (fun (a, b) -> Printf.sprintf "%d,%d" a b) pairs)

let spec_print spec =
  Printf.sprintf "{seed=%d n=%d nb=%d W=%d excl=[%s] co=[%s]}" spec.seed
    spec.num_cores spec.num_buses spec.total_width
    (pairs_print spec.raw_excl) (pairs_print spec.raw_co)

let soc_of_spec spec =
  Benchmarks.random ~seed:spec.seed ~num_cores:spec.num_cores ()

let problem_of_spec ?(constrained = true) spec =
  let constraints =
    if constrained then
      { Problem.exclusion_pairs = spec.raw_excl; co_pairs = spec.raw_co }
    else Problem.no_constraints
  in
  Problem.make (soc_of_spec spec) ~constraints ~num_buses:spec.num_buses
    ~total_width:spec.total_width

let instance_of_spec spec =
  { soc = soc_of_spec spec;
    num_buses = spec.num_buses;
    total_width = spec.total_width;
    excl = spec.raw_excl;
    co = spec.raw_co }

let problem_of_instance inst =
  Problem.make inst.soc
    ~constraints:{ Problem.exclusion_pairs = inst.excl; co_pairs = inst.co }
    ~num_buses:inst.num_buses ~total_width:inst.total_width

let instance_print inst =
  Printf.sprintf "{soc=%s n=%d nb=%d W=%d excl=[%s] co=[%s]}"
    (Soc.name inst.soc) (Soc.num_cores inst.soc) inst.num_buses
    inst.total_width (pairs_print inst.excl) (pairs_print inst.co)
