(** Greedy instance minimizer for failing oracle properties.

    Given an instance on which [check] reports a failure of [property],
    the shrinker repeatedly tries size-reducing edits — drop a core
    (constraint pairs relabelled or discarded along), collapse the
    width budget, remove a bus, remove a constraint pair, truncate a
    core's test-time staircase (halve its patterns or flip-flops, or
    demote it to combinational) — and keeps any edit after which the
    {e same} property is still the first failure. Matching on the
    property name keeps the minimized repro about the original bug
    rather than sliding onto an unrelated failure mid-shrink.

    Every accepted edit strictly reduces a finite size measure, so the
    loop terminates; [max_oracle_calls] additionally bounds the work on
    adversarial cases. Large edits are tried before small ones (drop a
    whole core before shaving one wire), which is what gets a 6-core
    instance down to the 2–3 cores a human can eyeball. *)

type result = {
  instance : Gen.instance;  (** The minimized instance (still failing). *)
  oracle_calls : int;  (** Oracle invocations spent shrinking. *)
  steps : int;  (** Accepted edits. *)
}

(** [shrink ~check ~property inst] minimizes [inst]. [check] is the
    oracle closure (with any injected fault already applied); [property]
    is the failure to preserve. Returns [inst] unchanged when no edit
    helps. Default [max_oracle_calls] is 400. *)
val shrink :
  ?max_oracle_calls:int ->
  check:(Gen.instance -> (unit, Oracle.failure) Stdlib.result) ->
  property:string ->
  Gen.instance ->
  result
