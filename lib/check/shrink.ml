module Soc = Soctam_soc.Soc
module Core_def = Soctam_soc.Core_def

type result = {
  instance : Gen.instance;
  oracle_calls : int;
  steps : int;
}

let cores_list soc = Array.to_list (Soc.cores soc)

let with_cores (inst : Gen.instance) cores =
  { inst with Gen.soc = Soc.make ~name:(Soc.name inst.Gen.soc) cores }

(* Drop core [i]: pairs touching it disappear, higher indices shift
   down. *)
let drop_core (inst : Gen.instance) i =
  let cores = List.filteri (fun j _ -> j <> i) (cores_list inst.Gen.soc) in
  let remap =
    List.filter_map (fun (a, b) ->
        if a = i || b = i then None
        else
          Some
            ((if a > i then a - 1 else a), (if b > i then b - 1 else b)))
  in
  { (with_cores inst cores) with
    Gen.excl = remap inst.Gen.excl;
    co = remap inst.Gen.co }

let replace_core (inst : Gen.instance) i core =
  with_cores inst
    (List.mapi (fun j c -> if j = i then core else c) (cores_list inst.Gen.soc))

let drop_nth xs n = List.filteri (fun i _ -> i <> n) xs

(* Staircase truncations for one core, in decreasing-aggressiveness
   order. Record updates keep the name (uniqueness) and footprint; all
   edits preserve Core_def's invariants (patterns >= 1,
   1 <= chains <= flip_flops). *)
let truncations (core : Core_def.t) =
  let demoted =
    match core.Core_def.scan with
    | Core_def.Combinational -> []
    | Core_def.Scan _ -> [ { core with Core_def.scan = Core_def.Combinational } ]
  in
  let halved_ff =
    match core.Core_def.scan with
    | Core_def.Scan { flip_flops; chains } when flip_flops >= 2 ->
        let flip_flops = flip_flops / 2 in
        [ { core with
            Core_def.scan =
              Core_def.Scan { flip_flops; chains = min chains flip_flops } } ]
    | _ -> []
  in
  let halved_patterns =
    if core.Core_def.patterns >= 2 then
      [ { core with Core_def.patterns = core.Core_def.patterns / 2 } ]
    else []
  in
  demoted @ halved_ff @ halved_patterns

(* Candidate edits, biggest reductions first. Built eagerly (cheap);
   evaluated lazily by the greedy search. *)
let candidates (inst : Gen.instance) =
  let n = Soc.num_cores inst.Gen.soc in
  let drops =
    if n <= 1 then [] else List.init n (fun i -> drop_core inst i)
  in
  let collapse_width =
    if inst.Gen.total_width > inst.Gen.num_buses then
      [ { inst with Gen.total_width = inst.Gen.num_buses } ]
    else []
  in
  let fewer_buses =
    if inst.Gen.num_buses >= 2 then
      [ { inst with Gen.num_buses = inst.Gen.num_buses - 1 } ]
    else []
  in
  let fewer_excl =
    List.mapi
      (fun k _ -> { inst with Gen.excl = drop_nth inst.Gen.excl k })
      inst.Gen.excl
  in
  let fewer_co =
    List.mapi
      (fun k _ -> { inst with Gen.co = drop_nth inst.Gen.co k })
      inst.Gen.co
  in
  let drop_pmax =
    match inst.Gen.p_max with
    | Some _ -> [ { inst with Gen.p_max = None } ]
    | None -> []
  in
  let truncated =
    List.concat
      (List.init n (fun i ->
           List.map (replace_core inst i) (truncations (Soc.core inst.Gen.soc i))))
  in
  let narrower =
    if inst.Gen.total_width > inst.Gen.num_buses then
      [ { inst with Gen.total_width = inst.Gen.total_width - 1 } ]
    else []
  in
  drops @ collapse_width @ fewer_buses @ fewer_excl @ fewer_co @ drop_pmax
  @ truncated @ narrower

let shrink ?(max_oracle_calls = 400) ~check ~property inst0 =
  let calls = ref 0 and steps = ref 0 in
  let still_fails inst =
    !calls < max_oracle_calls
    && begin
         incr calls;
         match check inst with
         | Error { Oracle.property = p; _ } -> String.equal p property
         | Ok () -> false
       end
  in
  let rec improve inst =
    match List.find_opt still_fails (candidates inst) with
    | Some smaller ->
        incr steps;
        improve smaller
    | None -> inst
  in
  let instance = improve inst0 in
  { instance; oracle_calls = !calls; steps = !steps }
