(** The cross-solver differential oracle.

    The repo computes (or bounds) the same quantity five independent
    ways — {!Soctam_core.Exact}, the {!Soctam_core.Ilp_formulation}
    MILP, the {!Soctam_core.Dp_assign}/{!Soctam_core.Width_dp}
    alternation, {!Soctam_core.Heuristics} and
    {!Soctam_core.Annealing} — and the ad-hoc version of this
    comparison is what caught the PR 2 false-infeasibility simplex
    prune. {!check} makes that discipline permanent: one call runs
    every cross-check and metamorphic property on one instance and
    reports the first property that fails.

    Properties, in evaluation order (the order is part of the contract:
    the {!Shrink} minimizer preserves "first failing property"):

    - [exact_verified] — the exact optimum passes the independent
      {!Soctam_core.Verify} checker;
    - [ilp_matches_exact] — the MILP agrees with enumeration+DP on
      feasibility and optimal [T], and its architecture verifies
      (skipped above {!ilp_width_cap}: the MILP grows with [NB * W]);
    - [alternate_fixpoint_optimal] — P1/P2 alternation started at the
      optimum stays at the optimum;
    - [heuristic_within_bounds] / [annealing_within_bounds] — a
      heuristic result verifies, never beats the optimum, and never
      exists on an exactly-infeasible instance;
    - [permutation_invariant] — reversing the core order (constraint
      pairs relabelled along) leaves feasibility and optimal [T]
      unchanged;
    - [canon_key_invariant] — the {!Soctam_service.Canon} cache key is
      identical for the original and the relabelled instance;
    - [width_monotone] — one extra wire never hurts: feasibility is
      unchanged and optimal [T] does not increase;
    - [relaxation_monotone] — dropping all constraint pairs keeps the
      instance feasible and does not increase optimal [T];
    - [warm_equals_cold] — the MILP without the heuristic incumbent
      ([seed_incumbent:false]) reaches the same optimum (skipped above
      {!ilp_width_cap});
    - [presolve_equivalence] — the MILP with presolve and clique cuts
      both disabled reaches the same optimum: the strengthening
      pipeline changes search effort, never answers (skipped above
      {!ilp_width_cap}, and skipped when the oracle itself was asked to
      run without presolve and cuts — the plain pipeline was then
      already exercised by [ilp_matches_exact]);
    - [race_matches_exact] — the {!Soctam_engine.Race} portfolio,
      raced sequentially with no deadline, certifies the exact
      optimum and its re-derived architecture verifies (skipped above
      {!ilp_width_cap}: the ILP engine is in the portfolio);
    - [pack_bounds] — the {!Soctam_pack.Pack} rectangle-packing family
      sandwiches: every packing validates (no overlap, co-pairs
      serialized, envelope respected, also through the
      {!Soctam_sched.Profile} emission path), the greedy portfolio
      seeded with the partition optimum never exceeds it (when that
      schedule respects the [p_max] envelope the partition solvers
      never see), and the unseeded exact packer, where its search
      exhausts within the node budget, stays between the
      area/energy/co-pair lower bound and both the greedy and
      partition results (exact search skipped above 6 cores). *)

(** Artificial solver bugs, injectable to prove the oracle and the
    shrinker work (CI runs one on every push). They emulate realistic
    failure modes without touching the solvers themselves:
    [Exact_off_by_one] misreports the exact optimum by one cycle
    (an evaluation bug), [Ilp_drop_exclusion] builds the MILP without
    the first exclusion pair (a lost-constraint bug — only caught on
    instances where that pair binds, so the fuzzer has to search), and
    [Heuristic_overclaim] misreports the heuristic's test time (a
    claimed-vs-recomputed mismatch). *)
type fault =
  | No_fault
  | Exact_off_by_one
  | Ilp_drop_exclusion
  | Heuristic_overclaim

(** Stable CLI names of the injectable faults
    (["exact-off-by-one"], ...). *)
val fault_names : string list

(** Parses a CLI fault name ("none" is {!No_fault}). *)
val fault_of_string : string -> (fault, string) result

val fault_name : fault -> string

type failure = {
  property : string;  (** Stable property name (see {!properties}). *)
  detail : string;  (** Human-readable mismatch description. *)
}

(** All property names, in evaluation order. *)
val properties : string list

(** MILP-backed properties are skipped when [total_width] exceeds this
    (8, matching the qcheck suites' cap): the Big-M model grows with
    [NB * W] and the oracle must stay cheap enough to run hundreds of
    instances per fuzz run. *)
val ilp_width_cap : int

(** [check ?fault ?presolve ?cuts instance] runs every property against
    [instance] and returns the first failure, if any. Deterministic:
    heuristic seeds are fixed and the annealer runs a shortened
    schedule. [presolve]/[cuts] (default [true]) are forwarded to every
    MILP solve — running a fuzz batch with them off exercises the
    unstrengthened pipeline end to end. *)
val check :
  ?fault:fault ->
  ?presolve:bool ->
  ?cuts:bool ->
  Gen.instance ->
  (unit, failure) result
