(** Memoized test-time staircases, shared across problem instances.

    A width sweep re-runs the optimizer at many total-width points [W]
    over the same SOC; without memoization every point recomputes each
    core's [t_i(w)] staircase (which, under the scan-distribution model,
    runs a wrapper chain-balancing design per width). A {!t} tabulates
    every core's full staircase for [w = 1 .. max_width] {e once} per
    SOC and is then shared — read-only — by every problem instance of
    the sweep, including instances evaluated concurrently on different
    domains: the table is immutable after {!build}, so cross-domain
    sharing is safe without locks. *)

type t

(** [build ?model soc ~max_width] tabulates [Test_time.cycles] for every
    core of [soc] and every width in [1 .. max_width]. The default model
    is [Serialization]. Raises [Invalid_argument] when [max_width < 1]. *)
val build : ?model:Test_time.model -> Soc.t -> max_width:int -> t

(** The SOC the table was built for. Consumers match on physical
    equality: a memo is only valid for the very SOC value it was built
    from. *)
val soc : t -> Soc.t

(** Time model the staircases were tabulated under. *)
val model : t -> Test_time.model

(** Largest tabulated width. *)
val max_width : t -> int

(** [time t ~core ~width] is the memoized [Test_time.cycles] value.
    Raises [Invalid_argument] when [core] or [width] is out of range. *)
val time : t -> core:int -> width:int -> int

(** [row t ~core] is the core's staircase [t_i(1) .. t_i(max_width)] as
    the {e internal} array — shared, not copied, so that problem
    instances can alias it without duplicating the table per sweep
    point. Callers must treat it as read-only. *)
val row : t -> core:int -> int array

(** [widen t ~max_width] is [t] itself when it already covers
    [max_width], otherwise a fresh table rebuilt to the larger width. *)
val widen : t -> max_width:int -> t
