type t = { name : string; core_arr : Core_def.t array }

let make ~name cores =
  if cores = [] then invalid_arg "Soc.make: no cores";
  let names = List.map (fun c -> c.Core_def.name) cores in
  let sorted = List.sort_uniq compare names in
  if List.length sorted <> List.length names then
    invalid_arg "Soc.make: duplicate core names";
  { name; core_arr = Array.of_list cores }

let name soc = soc.name
let num_cores soc = Array.length soc.core_arr

let core soc i =
  if i < 0 || i >= num_cores soc then invalid_arg "Soc.core: bad index";
  soc.core_arr.(i)

let cores soc = Array.copy soc.core_arr

let equal a b = a.name = b.name && a.core_arr = b.core_arr

let index_of soc core_name =
  let n = num_cores soc in
  let rec loop i =
    if i >= n then raise Not_found
    else if soc.core_arr.(i).Core_def.name = core_name then i
    else loop (i + 1)
  in
  loop 0

let total_area_mm2 soc =
  Array.fold_left (fun acc c -> acc +. Core_def.area_mm2 c) 0.0 soc.core_arr

let fold f init soc =
  let acc = ref init in
  Array.iteri (fun i c -> acc := f !acc i c) soc.core_arr;
  !acc

let pp ppf soc =
  Format.fprintf ppf "SOC %s (%d cores)@," soc.name (num_cores soc);
  Array.iteri
    (fun i c -> Format.fprintf ppf "  [%d] %a@," i Core_def.pp c)
    soc.core_arr
