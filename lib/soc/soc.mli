(** A system-on-chip: a named collection of embedded cores.

    Core indices (0-based positions in the SOC) are the identifiers used
    throughout the optimization libraries. *)

type t

(** [make ~name cores] builds an SOC. Raises [Invalid_argument] on an
    empty core list or duplicate core names. *)
val make : name:string -> Core_def.t list -> t

(** SOC name. *)
val name : t -> string

(** Number of cores. *)
val num_cores : t -> int

(** [core soc i] is the [i]-th core. Raises [Invalid_argument] when [i]
    is out of range. *)
val core : t -> int -> Core_def.t

(** All cores in index order (fresh array). *)
val cores : t -> Core_def.t array

(** Structural equality: same name and the same cores in the same
    order. Float fields compare with [(=)], so two SOCs built from the
    same data are equal but NaN-valued fields never are — fine for the
    determinism and round-trip checks this backs. *)
val equal : t -> t -> bool

(** [index_of soc name] is the index of the core called [name].
    @raise Not_found when absent. *)
val index_of : t -> string -> int

(** Sum of core areas in square millimetres. *)
val total_area_mm2 : t -> float

(** [fold f init soc] folds [f acc index core] over all cores. *)
val fold : ('a -> int -> Core_def.t -> 'a) -> 'a -> t -> 'a

(** Pretty-printer: name and one line per core. *)
val pp : Format.formatter -> t -> unit
