type t = {
  soc : Soc.t;
  model : Test_time.model;
  max_width : int;
  tables : int array array;  (** [tables.(i).(w-1)] for w in 1..max_width. *)
}

let build ?(model = Test_time.Serialization) soc ~max_width =
  if max_width < 1 then invalid_arg "Memo.build: max_width < 1";
  let tables =
    Array.init (Soc.num_cores soc) (fun i ->
        Test_time.table model (Soc.core soc i) ~max_width)
  in
  { soc; model; max_width; tables }

let soc t = t.soc
let model t = t.model
let max_width t = t.max_width

let row t ~core =
  if core < 0 || core >= Array.length t.tables then
    invalid_arg "Memo.row: core out of range";
  t.tables.(core)

let time t ~core ~width =
  if width < 1 || width > t.max_width then
    invalid_arg "Memo.time: width outside [1, max_width]";
  (row t ~core).(width - 1)

let widen t ~max_width =
  if max_width <= t.max_width then t
  else build ~model:t.model t.soc ~max_width
