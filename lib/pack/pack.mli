(** Rectangle-packing solver family.

    The successor formulations of the DAC 2000 paper (arXiv 1008.4446,
    1008.3320) recast wrapper/TAM co-optimization as 2D strip packing:
    each core test is a (width × time) rectangle to place on a strip of
    [total_width] wires, minimizing the makespan. The model subsumes the
    fixed-bus partition model — any architecture converts into an
    equal-makespan packing ({!Soctam_sched.Rect_sched.of_architecture})
    — and yields an explicit schedule rather than just an assignment.

    This module provides the full family:

    - {!candidates}: Pareto staircase breakpoints of [t_i(w)], the only
      widths worth considering for a core's rectangle;
    - {!greedy}: the papers' best-fit and diagonal-length-ordered
      skyline heuristics, with power co-assignment pairs serialized in
      time and an optional instantaneous power envelope enforced by
      delaying rectangles past finish events;
    - {!exact}: a small-instance branch-and-bound over (core, width,
      position) choices at normal positions, pruned by area / critical
      core / energy / co-pair lower bounds, a transposition table and a
      shared incumbent; it reports whether the search ran to exhaustion
      (the optimality certificate);
    - {!to_schedule}: emission as a {!Soctam_sched.Schedule.t} so
      {!Soctam_sched.Profile} can verify the instantaneous power
      envelope of any packed schedule.

    Exclusion (place-and-route) pairs are vacuous here — every test
    owns dedicated wires — so a packing always exists, even for
    instances whose partition model is infeasible. *)

module Rect_sched = Soctam_sched.Rect_sched

(** One admissible rectangle shape for a core. *)
type candidate = { width : int; time : int }

(** [candidates problem ~core] is the Pareto staircase of the core:
    width/time pairs in increasing width and strictly decreasing time,
    keeping only breakpoint widths ([t(w) < t(w-1)]). Never empty —
    width 1 is always present. *)
val candidates : Soctam_core.Problem.t -> core:int -> candidate list

(** [effective_budget problem ~p_max_mw] is the envelope actually
    enforced: [max p_max_mw (max_i power_i)]. A single test cannot be
    split, so any envelope below the hungriest core would make every
    instance infeasible; raising the budget to that floor keeps full
    serialization always feasible. *)
val effective_budget : Soctam_core.Problem.t -> p_max_mw:float -> float

(** [lower_bound ?p_max_mw problem] strengthens
    {!Rect_sched.lower_bound} with the co-pair serialization bound
    (each pair's tests are disjoint in time) and, when an envelope is
    given, the energy bound [⌈Σ_i min-energy_i / budget⌉]. *)
val lower_bound : ?p_max_mw:float -> Soctam_core.Problem.t -> int

(** [peak_power problem packing] is the highest instantaneous summed
    power over the packing's placements. *)
val peak_power : Soctam_core.Problem.t -> Rect_sched.t -> float

(** [validate ?p_max_mw problem packing] is {!Rect_sched.validate}
    plus, when [p_max_mw] is given, a check that the packing's peak
    power stays within {!effective_budget}. *)
val validate :
  ?p_max_mw:float ->
  Soctam_core.Problem.t ->
  Rect_sched.t ->
  (unit, string) result

(** [greedy ?p_max_mw ?seed_archs problem] runs the heuristic
    portfolio — {diagonal-length, longest-time, largest-area} orders ×
    {best-fit over all candidate widths, fixed best-area width}
    placement — plus the conversions of any [seed_archs] that respect
    the envelope, and returns the best packing found. Deterministic.
    Always succeeds: the first policy runs even under an immediate
    [should_stop]. [report] fires on each strictly improving packing,
    in portfolio order — the race's streaming hook. *)
val greedy :
  ?p_max_mw:float ->
  ?seed_archs:Soctam_core.Architecture.t list ->
  ?should_stop:(unit -> bool) ->
  ?report:(Rect_sched.t -> unit) ->
  Soctam_core.Problem.t ->
  Rect_sched.t

(** Outcome of {!exact} / {!solve}. [optimal] is the certificate: the
    search ran to exhaustion (no node-budget blow, no [should_stop]),
    so no packing beats [packing] (or, when [packing = None], the
    [upper_bound] it was seeded with). *)
type result = {
  packing : Rect_sched.t option;
  optimal : bool;
  nodes : int;
  lower_bound : int;
}

(** [exact ?p_max_mw ?node_budget ?upper_bound ?on_incumbent
    ?should_stop problem] searches placements exhaustively at normal
    positions: start times in {0} ∪ {finish events}, wire offsets in
    {0} ∪ {right edges}. [upper_bound] is polled for the shared
    incumbent makespan; only strictly better packings are kept and
    reported via [on_incumbent]. [packing = None] means nothing beat
    [upper_bound] (with the certificate, that proves the bound
    optimal). *)
val exact :
  ?p_max_mw:float ->
  ?node_budget:int ->
  ?upper_bound:(unit -> int option) ->
  ?on_incumbent:(Rect_sched.t -> unit) ->
  ?should_stop:(unit -> bool) ->
  Soctam_core.Problem.t ->
  result

(** [solve ?p_max_mw ?node_budget ?seed_archs problem] seeds {!exact}
    with the {!greedy} portfolio incumbent and always returns a
    packing: the exact optimum when the search exhausted, the best
    incumbent otherwise. *)
val solve :
  ?p_max_mw:float ->
  ?node_budget:int ->
  ?seed_archs:Soctam_core.Architecture.t list ->
  Soctam_core.Problem.t ->
  result

(** [to_schedule packing] lowers a packing to a schedule by first-fit
    assignment of placements to tracks (reusing the [bus] field as the
    track id), preserving every start/finish — so [Gantt.render] and
    [Profile.of_schedule] apply unchanged to packed schedules. *)
val to_schedule : Rect_sched.t -> Soctam_sched.Schedule.t
