module Problem = Soctam_core.Problem
module Architecture = Soctam_core.Architecture
module Soc = Soctam_soc.Soc
module Core_def = Soctam_soc.Core_def
module Test_time = Soctam_soc.Test_time
module Rect_sched = Soctam_sched.Rect_sched
module Schedule = Soctam_sched.Schedule

type candidate = { width : int; time : int }

let candidates problem ~core =
  let w = Problem.total_width problem in
  let acc = ref [] in
  let best = ref max_int in
  for k = 1 to w do
    let t = Problem.time problem ~core ~width:k in
    if t < !best then begin
      best := t;
      acc := { width = k; time = t } :: !acc
    end
  done;
  List.rev !acc

let core_power problem core =
  (Soc.core (Problem.soc problem) core).Core_def.power_mw

let effective_budget problem ~p_max_mw =
  let n = Problem.num_cores problem in
  let hungriest = ref 0.0 in
  for i = 0 to n - 1 do
    hungriest := Float.max !hungriest (core_power problem i)
  done;
  Float.max p_max_mw !hungriest

(* Per-core minima over the staircase. *)
let min_time cands = List.fold_left (fun a c -> min a c.time) max_int cands

let min_area cands =
  List.fold_left (fun a c -> min a (c.width * c.time)) max_int cands

let lower_bound ?p_max_mw problem =
  let n = Problem.num_cores problem in
  let base = Rect_sched.lower_bound problem in
  let cands = Array.init n (fun i -> candidates problem ~core:i) in
  let mt = Array.map min_time cands in
  let co =
    List.fold_left
      (fun acc (a, b) -> max acc (mt.(a) + mt.(b)))
      0
      (Problem.constraints problem).Problem.co_pairs
  in
  let energy =
    match p_max_mw with
    | None -> 0
    | Some p ->
        let budget = effective_budget problem ~p_max_mw:p in
        let total = ref 0.0 in
        for i = 0 to n - 1 do
          total := !total +. (core_power problem i *. float_of_int mt.(i))
        done;
        int_of_float (Float.ceil (!total /. budget -. 1e-9))
  in
  max base (max co energy)

(* Instantaneous power of [placements] at the event points inside
   [start, finish), plus [power], must stay within [budget]. Event
   points are [start] itself and every placement start strictly
   inside the interval — power only changes there. *)
let envelope_ok problem placements ~start ~finish ~power ~budget =
  let active t =
    List.fold_left
      (fun acc (p : Rect_sched.placement) ->
        if p.start <= t && t < p.finish then acc +. core_power problem p.core
        else acc)
      0.0 placements
  in
  let ok t = active t +. power <= budget +. 1e-9 in
  ok start
  && List.for_all
       (fun (p : Rect_sched.placement) ->
         p.start <= start || p.start >= finish || ok p.start)
       placements

let peak_power problem (packing : Rect_sched.t) =
  List.fold_left
    (fun acc (p : Rect_sched.placement) ->
      let at_start =
        List.fold_left
          (fun sum (q : Rect_sched.placement) ->
            if q.start <= p.start && p.start < q.finish then
              sum +. core_power problem q.core
            else sum)
          0.0 packing.placements
      in
      Float.max acc at_start)
    0.0 packing.placements

let validate ?p_max_mw problem packing =
  match Rect_sched.validate problem packing with
  | Error _ as e -> e
  | Ok () -> (
      match p_max_mw with
      | None -> Ok ()
      | Some p ->
          let budget = effective_budget problem ~p_max_mw:p in
          let peak = peak_power problem packing in
          if peak <= budget +. 1e-9 then Ok ()
          else
            Error
              (Printf.sprintf "peak power %.3f mW exceeds budget %.3f mW"
                 peak budget))

(* Earliest finish event strictly after [after] — the retry point when
   a skyline position violates the envelope. Some placement is active
   past [after] whenever a violation occurs, so this always advances. *)
let next_finish placements ~after =
  List.fold_left
    (fun acc (p : Rect_sched.placement) ->
      if p.finish > after && p.finish < acc then p.finish else acc)
    max_int placements

(* ---------------------------------------------------------------- *)
(* Greedy heuristics                                                 *)
(* ---------------------------------------------------------------- *)

type ctx = {
  problem : Problem.t;
  total_width : int;
  cands : candidate list array;
  power : float array;
  partners : int list array;
  budget : float;  (* [infinity] when no envelope *)
}

let make_ctx ?p_max_mw problem =
  let n = Problem.num_cores problem in
  {
    problem;
    total_width = Problem.total_width problem;
    cands = Array.init n (fun i -> candidates problem ~core:i);
    power = Array.init n (fun i -> core_power problem i);
    partners = Rect_sched.co_partners problem;
    budget =
      (match p_max_mw with
      | None -> infinity
      | Some p -> effective_budget problem ~p_max_mw:p);
  }

(* Earliest envelope-respecting skyline position for a [width]-wide,
   [dur]-long rectangle starting no earlier than [floor_time]. *)
let place_one ctx free placements ~core ~width ~dur ~floor_time =
  let rec attempt floor =
    let x, s = Rect_sched.place_skyline free ~width ~floor_time:floor in
    if
      ctx.budget = infinity
      || envelope_ok ctx.problem placements ~start:s ~finish:(s + dur)
           ~power:ctx.power.(core) ~budget:ctx.budget
    then (x, s)
    else attempt (max (next_finish placements ~after:s) (s + 1))
  in
  attempt floor_time

(* Place cores in [order]; [widths_for core] lists the widths best-fit
   may choose between (singleton = fixed-width policy). *)
let run_policy ctx ~order ~widths_for =
  let free = Array.make ctx.total_width 0 in
  let placements = ref [] in
  let finish_of = Array.make (Array.length ctx.power) None in
  let makespan = ref 0 in
  Array.iter
    (fun core ->
      let floor_time =
        List.fold_left
          (fun acc p ->
            match finish_of.(p) with Some f -> max acc f | None -> acc)
          0 ctx.partners.(core)
      in
      let best = ref None in
      List.iter
        (fun (c : candidate) ->
          let x, s =
            place_one ctx free !placements ~core ~width:c.width ~dur:c.time
              ~floor_time
          in
          let key = (s + c.time, c.width, x) in
          match !best with
          | Some (k, _, _, _) when compare k key <= 0 -> ()
          | _ -> best := Some (key, c, x, s))
        (widths_for core);
      match !best with
      | None -> assert false
      | Some (_, c, wire_lo, start) ->
          let finish = start + c.time in
          for k = wire_lo to wire_lo + c.width - 1 do
            free.(k) <- finish
          done;
          finish_of.(core) <- Some finish;
          placements :=
            { Rect_sched.core; width = c.width; wire_lo; start; finish }
            :: !placements;
          makespan := max !makespan finish)
    order;
  let placements =
    List.sort
      (fun (a : Rect_sched.placement) (b : Rect_sched.placement) ->
        compare (a.start, a.wire_lo, a.core) (b.start, b.wire_lo, b.core))
      !placements
  in
  { Rect_sched.placements; makespan = !makespan }

let greedy ?p_max_mw ?(seed_archs = []) ?(should_stop = fun () -> false)
    ?(report = fun _ -> ()) problem =
  let ctx = make_ctx ?p_max_mw problem in
  let n = Problem.num_cores problem in
  let area_cand =
    Array.init n (fun i ->
        List.fold_left
          (fun best (c : candidate) ->
            if c.width * c.time < best.width * best.time then c else best)
          (List.hd ctx.cands.(i))
          ctx.cands.(i))
  in
  let mt = Array.map min_time ctx.cands in
  let sorted_by key =
    let order = Array.init n Fun.id in
    Array.sort (fun a b -> compare (key b, a) (key a, b)) order;
    order
  in
  (* Diagonal length of the best-area rectangle, per the packing
     papers; squared to stay integral. *)
  let diag i =
    let c = area_cand.(i) in
    (c.width * c.width) + (c.time * c.time)
  in
  let orders =
    [ sorted_by diag;
      sorted_by (fun i -> mt.(i));
      sorted_by (fun i -> area_cand.(i).width * area_cand.(i).time) ]
  in
  let best = ref None in
  let consider (c : Rect_sched.t) =
    match !best with
    | Some (b : Rect_sched.t) when b.makespan <= c.makespan -> ()
    | _ ->
        best := Some c;
        report c
  in
  (* The first policy always runs so a packing is guaranteed even under
     an immediate stop; the rest poll [should_stop] between runs. *)
  let first = ref true in
  List.iter
    (fun order ->
      List.iter
        (fun widths_for ->
          if !first || not (should_stop ()) then begin
            first := false;
            consider (run_policy ctx ~order ~widths_for)
          end)
        [ (fun i -> ctx.cands.(i)); (fun i -> [ area_cand.(i) ]) ])
    orders;
  List.iter
    (fun arch ->
      if not (should_stop ()) then begin
        let packing = Rect_sched.of_architecture problem arch in
        if
          ctx.budget = infinity
          || peak_power problem packing <= ctx.budget +. 1e-9
        then consider packing
      end)
    seed_archs;
  match !best with Some best -> best | None -> assert false

(* ---------------------------------------------------------------- *)
(* Exact branch-and-bound                                            *)
(* ---------------------------------------------------------------- *)

type result = {
  packing : Rect_sched.t option;
  optimal : bool;
  nodes : int;
  lower_bound : int;
}

let exact ?p_max_mw ?(node_budget = max_int) ?(upper_bound = fun () -> None)
    ?(on_incumbent = fun _ -> ()) ?(should_stop = fun () -> false) problem =
  let ctx = make_ctx ?p_max_mw problem in
  let n = Problem.num_cores problem in
  let w = ctx.total_width in
  let cands = Array.map Array.of_list ctx.cands in
  let mt = Array.map min_time ctx.cands in
  let ma = Array.map min_area ctx.cands in
  let min_energy =
    Array.init n (fun i -> ctx.power.(i) *. float_of_int mt.(i))
  in
  let co_pairs = (Problem.constraints problem).Problem.co_pairs in
  let lb = lower_bound ?p_max_mw problem in
  let nodes = ref 0 in
  let exhausted = ref true in
  let best = ref None in
  let local_best = ref max_int in
  let cutoff () =
    let shared =
      match upper_bound () with None -> max_int | Some u -> u
    in
    min !local_best shared
  in
  (* Skipping an already-seen placement set is safe: the cutoff only
     tightens over time, so the earlier visit explored every completion
     the current one could. *)
  let seen = Hashtbl.create 4096 in
  let record placements makespan =
    if makespan < !local_best then begin
      local_best := makespan;
      let sorted =
        List.sort
          (fun (a : Rect_sched.placement) (b : Rect_sched.placement) ->
            compare (a.start, a.wire_lo, a.core) (b.start, b.wire_lo, b.core))
          placements
      in
      let packing = { Rect_sched.placements = sorted; makespan } in
      best := Some packing;
      on_incumbent packing
    end
  in
  let overlaps (p : Rect_sched.placement) ~x ~width ~start ~finish =
    start < p.finish && p.start < finish
    && x < p.wire_lo + p.width
    && p.wire_lo < x + width
  in
  let rec branch placed mask cur_max area_left energy_left =
    incr nodes;
    if should_stop () || !nodes > node_budget then exhausted := false
    else begin
      let cutoff = cutoff () in
      let placed_area =
        List.fold_left
          (fun acc (p : Rect_sched.placement) ->
            acc + (p.width * (p.finish - p.start)))
          0 placed
      in
      let node_lb = ref (max cur_max ((placed_area + area_left + w - 1) / w)) in
      for i = 0 to n - 1 do
        if mask land (1 lsl i) = 0 then node_lb := max !node_lb mt.(i)
      done;
      if ctx.budget < infinity then begin
        let placed_energy =
          List.fold_left
            (fun acc (p : Rect_sched.placement) ->
              acc
              +. (ctx.power.(p.core) *. float_of_int (p.finish - p.start)))
            0.0 placed
        in
        node_lb :=
          max !node_lb
            (int_of_float
               (Float.ceil
                  ((placed_energy +. energy_left) /. ctx.budget -. 1e-9)))
      end;
      List.iter
        (fun (a, b) ->
          let unplaced i = mask land (1 lsl i) = 0 in
          match (unplaced a, unplaced b) with
          | true, true -> node_lb := max !node_lb (mt.(a) + mt.(b))
          | true, false | false, true ->
              let placed_one = if unplaced a then b else a in
              let waiting = if unplaced a then a else b in
              let p =
                List.find
                  (fun (p : Rect_sched.placement) -> p.core = placed_one)
                  placed
              in
              if p.start < mt.(waiting) then
                node_lb := max !node_lb (p.finish + mt.(waiting))
          | false, false -> ())
        co_pairs;
      if !node_lb >= cutoff then ()
      else if mask = (1 lsl n) - 1 then record placed cur_max
      else begin
        let key =
          List.sort compare
            (List.map
               (fun (p : Rect_sched.placement) ->
                 (p.core, p.width, p.wire_lo, p.start))
               placed)
        in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.add seen key ();
          let starts =
            List.sort_uniq compare
              (0
              :: List.map (fun (p : Rect_sched.placement) -> p.finish) placed)
          in
          let xs =
            List.sort_uniq compare
              (0
              :: List.map
                   (fun (p : Rect_sched.placement) -> p.wire_lo + p.width)
                   placed)
          in
          for core = 0 to n - 1 do
            if mask land (1 lsl core) = 0 then
              Array.iter
                (fun (c : candidate) ->
                  List.iter
                    (fun start ->
                      let finish = start + c.time in
                      List.iter
                        (fun x ->
                          if x + c.width <= w then begin
                            let free =
                              (not
                                 (List.exists
                                    (fun p ->
                                      overlaps p ~x ~width:c.width ~start
                                        ~finish)
                                    placed))
                              && List.for_all
                                   (fun partner ->
                                     match
                                       List.find_opt
                                         (fun (p : Rect_sched.placement) ->
                                           p.core = partner)
                                         placed
                                     with
                                     | Some p ->
                                         finish <= p.start
                                         || p.finish <= start
                                     | None -> true)
                                   ctx.partners.(core)
                              && (ctx.budget = infinity
                                 || envelope_ok problem placed ~start ~finish
                                      ~power:ctx.power.(core)
                                      ~budget:ctx.budget)
                            in
                            if free then
                              branch
                                ({ Rect_sched.core; width = c.width;
                                   wire_lo = x; start; finish }
                                :: placed)
                                (mask lor (1 lsl core))
                                (max cur_max finish)
                                (area_left - ma.(core))
                                (energy_left -. min_energy.(core))
                          end)
                        xs)
                    starts)
                cands.(core)
          done
        end
      end
    end
  in
  let area0 = Array.fold_left ( + ) 0 ma in
  let energy0 = Array.fold_left ( +. ) 0.0 min_energy in
  branch [] 0 0 area0 energy0;
  { packing = !best; optimal = !exhausted; nodes = !nodes; lower_bound = lb }

let solve ?p_max_mw ?node_budget ?seed_archs problem =
  let seed = greedy ?p_max_mw ?seed_archs problem in
  let r =
    exact ?p_max_mw ?node_budget
      ~upper_bound:(fun () -> Some seed.Rect_sched.makespan)
      problem
  in
  match r.packing with
  | Some _ -> r
  | None -> { r with packing = Some seed }

(* ---------------------------------------------------------------- *)
(* Schedule emission                                                 *)
(* ---------------------------------------------------------------- *)

let to_schedule (packing : Rect_sched.t) =
  let sorted =
    List.sort
      (fun (a : Rect_sched.placement) (b : Rect_sched.placement) ->
        compare (a.start, a.wire_lo, a.core) (b.start, b.wire_lo, b.core))
      packing.placements
  in
  (* First-fit track assignment: a track holds time-disjoint tests, so
     the [bus] field becomes a valid lane for Gantt rendering. *)
  let tracks = ref [] in
  let entries =
    List.map
      (fun (p : Rect_sched.placement) ->
        let rec assign acc = function
          | (id, last) :: rest when last <= p.start ->
              (id, List.rev_append acc ((id, p.finish) :: rest))
          | t :: rest -> assign (t :: acc) rest
          | [] ->
              let id = List.length !tracks in
              (id, List.rev ((id, p.finish) :: acc))
        in
        let id, tracks' = assign [] !tracks in
        tracks := tracks';
        { Schedule.core = p.core; bus = id; start = p.start; finish = p.finish })
      sorted
  in
  let entries =
    List.sort
      (fun (a : Schedule.entry) (b : Schedule.entry) ->
        compare (a.bus, a.start, a.core) (b.bus, b.start, b.core))
      entries
  in
  { Schedule.entries; makespan = packing.makespan }
